package tenant_test

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/cloud"
	"qcloud/internal/tenant"
	"qcloud/internal/trace"
	"qcloud/internal/workload"
)

var btWindow = struct{ start, end time.Time }{
	start: time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC),
	end:   time.Date(2021, 2, 15, 0, 0, 0, 0, time.UTC),
}

func btMachines(t *testing.T) []*backend.Machine {
	t.Helper()
	var sel []*backend.Machine
	for _, m := range backend.Fleet() {
		switch m.Name {
		case "ibmq_athens", "ibmq_rome":
			sel = append(sel, m)
		}
	}
	if len(sel) != 2 {
		t.Fatalf("fleet is missing the test machines, got %d", len(sel))
	}
	return sel
}

// btConfig is a quiet, fault-free session config: conservation and
// convergence assertions need tenant jobs to be the only demand.
func btConfig(t *testing.T, seed int64, workers int) cloud.Config {
	bg := cloud.DefaultBackground()
	bg.PublicUtil, bg.PrivateUtil, bg.RampFloor = 0, 0, 0
	return cloud.Config{
		Seed: seed, Start: btWindow.start, End: btWindow.end,
		Machines: btMachines(t), Workers: workers, Background: bg,
	}
}

func btRun(t *testing.T, ccfg cloud.Config, tcfg tenant.Config, subs []tenant.Submission) (*tenant.Broker, *trace.Trace) {
	t.Helper()
	b, err := tenant.Open(ccfg, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Play(subs); err != nil {
		t.Fatal(err)
	}
	tr, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	return b, tr
}

func btScenario(t *testing.T, name string, cfg workload.TenantConfig) (tenant.Config, []tenant.Submission) {
	t.Helper()
	sc, err := workload.FindTenantScenario(name)
	if err != nil {
		t.Fatal(err)
	}
	return sc.Build(cfg)
}

// tenantBusySeconds sums QPU busy time over the trace's tenant jobs —
// the ground truth the ledger must conserve.
func tenantBusySeconds(tr *trace.Trace) float64 {
	busy := 0.0
	for _, j := range tr.Jobs {
		if strings.HasPrefix(j.User, "tenant:") {
			busy += j.EndTime.Sub(j.StartTime).Seconds()
		}
	}
	return busy
}

// TestBrokerConservesQPUSeconds: the allocation ledger's raw total is
// exactly the QPU time the trace says tenant jobs consumed, per-queue
// decayed allocation never exceeds raw, and every arrival is accounted
// for in exactly one terminal counter.
func TestBrokerConservesQPUSeconds(t *testing.T) {
	tcfg, subs := btScenario(t, "uniform", workload.TenantConfig{
		Seed: 11, Start: btWindow.start, End: btWindow.end,
		Machines: btMachines(t), Tenants: 4, TotalJobs: 300,
	})
	b, tr := btRun(t, btConfig(t, 7, 2), tcfg, subs)

	busy := tenantBusySeconds(tr)
	if raw := b.Ledger().RawTotal(); math.Abs(raw-busy) > 1e-6*math.Max(busy, 1) {
		t.Fatalf("ledger raw total %.6f != trace tenant busy seconds %.6f", raw, busy)
	}
	if busy == 0 {
		t.Fatal("scenario produced no tenant QPU time")
	}
	for _, st := range b.States() {
		if st.Decayed > st.Raw+1e-9 {
			t.Fatalf("queue %s: decayed %.3f exceeds raw %.3f", st.Name, st.Decayed, st.Raw)
		}
		if st.Pending != 0 || st.InFlight != 0 {
			t.Fatalf("queue %s: %d pending / %d in flight after Run", st.Name, st.Pending, st.InFlight)
		}
		if got := st.Done + st.Errored + st.Cancelled + st.Unserved; got != st.Arrived {
			t.Fatalf("queue %s: terminal counters %d != arrivals %d", st.Name, got, st.Arrived)
		}
	}
}

// TestBrokerBitIdenticalAcrossWorkers: a full multi-tenant run — trace,
// ledger and queue state — is a pure function of the seed, independent
// of the session worker budget.
func TestBrokerBitIdenticalAcrossWorkers(t *testing.T) {
	run := func(workers int) (traceJSON, ledger, states []byte) {
		tcfg, subs := btScenario(t, "skewed", workload.TenantConfig{
			Seed: 5, Start: btWindow.start, End: btWindow.end,
			Machines: btMachines(t), Tenants: 6, TotalJobs: 250,
		})
		tcfg.Preemption = true
		b, tr := btRun(t, btConfig(t, 9, workers), tcfg, subs)
		var tj, lg, st bytes.Buffer
		if err := trace.WriteJSON(&tj, tr); err != nil {
			t.Fatal(err)
		}
		if err := b.Ledger().Dump(&lg, b.Now()); err != nil {
			t.Fatal(err)
		}
		if err := b.DumpStates(&st); err != nil {
			t.Fatal(err)
		}
		return tj.Bytes(), lg.Bytes(), st.Bytes()
	}
	tj1, lg1, st1 := run(1)
	tj4, lg4, st4 := run(4)
	if !bytes.Equal(tj1, tj4) {
		t.Fatal("trace differs between serial and 4-worker runs")
	}
	if !bytes.Equal(lg1, lg4) {
		t.Fatalf("ledger dump differs between serial and 4-worker runs:\n%s\nvs\n%s", lg1, lg4)
	}
	if !bytes.Equal(st1, st4) {
		t.Fatalf("state dump differs between serial and 4-worker runs:\n%s\nvs\n%s", st1, st4)
	}
}

// inversionScenario floods one machine with low-priority bulk work,
// then a high-priority queue arrives: the preemption A/B fixture.
func inversionScenario(t *testing.T) (tenant.Config, []tenant.Submission) {
	t.Helper()
	tcfg, subs := btScenario(t, "priority-inversion", workload.TenantConfig{
		Seed: 3, Start: btWindow.start, End: btWindow.start.Add(48 * time.Hour),
		Machines: btMachines(t), Tenants: 5, TotalJobs: 600,
	})
	return tcfg, subs
}

// TestPreemptionBoundsPriorityWait is the A/B acceptance check: with
// preemption on, the high-priority queue's mean release-to-start wait
// drops well below the no-preemption run, at nonzero preemption count,
// with the bulk queues' totals still conserved.
func TestPreemptionBoundsPriorityWait(t *testing.T) {
	waitOf := func(preempt bool) (float64, *tenant.Broker) {
		tcfg, subs := inversionScenario(t)
		tcfg.Preemption = preempt
		b, tr := btRun(t, btConfig(t, 13, 2), tcfg, subs)
		busy := tenantBusySeconds(tr)
		if raw := b.Ledger().RawTotal(); math.Abs(raw-busy) > 1e-6*math.Max(busy, 1) {
			t.Fatalf("preempt=%v: ledger %.3f != busy %.3f", preempt, raw, busy)
		}
		st, ok := b.State("interactive")
		if !ok || st.Done == 0 {
			t.Fatalf("preempt=%v: interactive queue ran nothing (%+v)", preempt, st)
		}
		return st.WaitMean, b
	}
	off, bOff := waitOf(false)
	on, bOn := waitOf(true)
	if bOff.Preemptions() != 0 {
		t.Fatalf("preemption disabled but %d preemptions fired", bOff.Preemptions())
	}
	if bOn.Preemptions() == 0 {
		t.Fatal("preemption enabled but never fired")
	}
	if on >= 0.7*off {
		t.Fatalf("preemption did not bound priority wait: %.1fs with vs %.1fs without", on, off)
	}
}

// TestPreemptReasonDistinct: broker preemptions surface as cancel
// events with CancelPreempted — distinguishable from user cancels —
// the event conservation laws hold, and the broker's preemption count
// matches both the event stream and the per-queue counters.
func TestPreemptReasonDistinct(t *testing.T) {
	tcfg, subs := inversionScenario(t)
	tcfg.Preemption = true
	b, err := tenant.Open(btConfig(t, 13, 2), tcfg)
	if err != nil {
		t.Fatal(err)
	}
	events, err := b.Session().Observe(cloud.EventFilter{})
	if err != nil {
		t.Fatal(err)
	}
	// One explicit user cancel for contrast: a direct session
	// submission withdrawn straight away, before the broker starts.
	spec := *subs[0].Spec
	spec.SubmitTime = btWindow.start.Add(time.Minute)
	spec.User = "solo"
	h, err := b.Session().Submit(&spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Session().Cancel(h); err != nil {
		t.Fatal(err)
	}
	if err := b.Play(subs); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run(); err != nil {
		t.Fatal(err)
	}
	counts := make(map[cloud.EventKind]int)
	reasons := make(map[cloud.CancelReason]int)
	enqueued := make(map[*cloud.JobHandle]bool)
	preEnqueueCancels := 0
	for ev := range events {
		counts[ev.Kind]++
		switch ev.Kind {
		case cloud.EventEnqueue:
			enqueued[ev.Handle] = true
		case cloud.EventCancel:
			reasons[ev.Reason]++
			if ev.Handle == nil || !enqueued[ev.Handle] {
				preEnqueueCancels++
			}
		}
	}
	if got := reasons[cloud.CancelPreempted]; got != b.Preemptions() {
		t.Fatalf("%d cancel events carry CancelPreempted, broker reports %d preemptions", got, b.Preemptions())
	}
	if b.Preemptions() == 0 {
		t.Fatal("fixture fired no preemptions")
	}
	if reasons[cloud.CancelUser] == 0 {
		t.Fatal("explicit user cancel did not surface as CancelUser")
	}
	preempted := 0
	for _, st := range b.States() {
		preempted += st.Preempted
	}
	if preempted != b.Preemptions() {
		t.Fatalf("per-queue preempted counters sum to %d, broker reports %d", preempted, b.Preemptions())
	}
	// The only cancel allowed to skip the queue entirely is the one
	// explicit pre-admission user cancel; every broker preemption must
	// hit a job that was actually enqueued.
	if preEnqueueCancels != 1 {
		t.Fatalf("%d cancels of never-enqueued jobs, want exactly the 1 user cancel", preEnqueueCancels)
	}
	if got, want := counts[cloud.EventEnqueue], counts[cloud.EventStart]+counts[cloud.EventCancel]-preEnqueueCancels; got != want {
		t.Fatalf("enqueue ≡ start+cancel broken under preemption: %d vs %d", got, want)
	}
	if got, want := counts[cloud.EventStart], counts[cloud.EventDone]+counts[cloud.EventError]+counts[cloud.EventRetry]; got != want {
		t.Fatalf("start ≡ done+error+retry broken under preemption: %d vs %d", got, want)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWeightedFairShareConvergence200 is the acceptance scenario: 200
// tenants with 1/2/3-weighted shares, identical job shapes, all
// backlogged from the first hour. Every queue's realized share of raw
// allocation must land within 5% (relative) of its deserved share.
func TestWeightedFairShareConvergence200(t *testing.T) {
	machines := btMachines(t)
	const tenants = 200
	var queues []tenant.QueueConfig
	for i := 0; i < tenants; i++ {
		queues = append(queues, tenant.QueueConfig{
			Name:  fmt.Sprintf("t%03d", i),
			Share: float64(1 + i%3),
		})
	}
	// Identical job shape everywhere: share error can only come from
	// the broker's ordering, not workload noise. Demand (80 jobs per
	// weight unit) overshoots the 4-day window's capacity, so every
	// queue stays backlogged and shares are decided purely by the
	// broker.
	end := btWindow.start.Add(4 * 24 * time.Hour)
	var subs []tenant.Submission
	for i := 0; i < tenants; i++ {
		n := 80 * (1 + i%3)
		for j := 0; j < n; j++ {
			at := btWindow.start.Add(time.Duration(i*97+j*131) * time.Millisecond)
			subs = append(subs, tenant.Submission{
				Queue: fmt.Sprintf("t%03d", i),
				Spec: &cloud.JobSpec{
					SubmitTime: at, Machine: machines[(i+j)%2].Name,
					BatchSize: 12, Shots: 1024, CircuitName: "qft4",
					Width: 4, TotalDepth: 240, TotalGateOps: 800, CXTotal: 120, MemSlots: 4,
				},
			})
		}
	}
	ccfg := btConfig(t, 17, 4)
	ccfg.End = end
	tcfg := tenant.Config{
		Queues:        queues,
		HalfLife:      1000 * time.Hour, // effectively undecayed: raw shares are the target
		Tick:          time.Minute,
		MaxPerMachine: 2,
	}
	b, tr := btRun(t, ccfg, tcfg, subs)

	busy := tenantBusySeconds(tr)
	if raw := b.Ledger().RawTotal(); math.Abs(raw-busy) > 1e-6*busy {
		t.Fatalf("ledger raw total %.3f != trace busy %.3f", raw, busy)
	}
	m := b.Metrics()
	if m.JainIndex < 0.999 {
		t.Fatalf("Jain index %.5f, want ≥ 0.999", m.JainIndex)
	}
	worst, worstName := 0.0, ""
	for _, st := range b.States() {
		if st.Unserved == 0 && st.Pending == 0 {
			t.Fatalf("queue %s drained its backlog — demand must outlast the window for this assertion", st.Name)
		}
		rel := math.Abs(st.Share-st.Deserved) / st.Deserved
		if rel > worst {
			worst, worstName = rel, st.Name
		}
	}
	if worst > 0.05 {
		t.Fatalf("queue %s deviates %.2f%% from its deserved share (limit 5%%)", worstName, 100*worst)
	}
	t.Logf("200-tenant convergence: worst relative deviation %.2f%% (%s), Jain %.6f, %d preemptions",
		100*worst, worstName, m.JainIndex, m.Preemptions)
}
