package tenant

import (
	"fmt"
	"io"
	"math"
	"time"
)

// Ledger is the time-aware allocation history: QPU-seconds charged per
// queue, decayed exponentially over a configurable half-life so recent
// consumption outweighs ancient history. It also keeps the undecayed
// lifetime totals, which is what the conservation law is asserted on
// (sum of per-queue raw allocation ≡ total machine busy time spent on
// tenant jobs).
//
// Charges arrive in the broker's deterministic merge order. That order
// is time-sorted within one drain batch but only approximately
// monotone across machines, so decay application guards against a
// charge timestamped before the entry's last update (it is applied
// without further decay). Every guard decision is itself deterministic,
// so ledger state is bit-identical at any worker count.
type Ledger struct {
	halfLifeSec float64
	names       []string
	alloc       []float64 // decayed QPU-seconds, valid at last[i]
	last        []float64 // sim-second of each entry's latest decay
	raw         []float64 // undecayed lifetime QPU-seconds
}

// NewLedger creates a ledger for the named queues starting at sim
// second startSec.
func NewLedger(names []string, halfLife time.Duration, startSec float64) *Ledger {
	l := &Ledger{
		halfLifeSec: halfLife.Seconds(),
		names:       append([]string(nil), names...),
		alloc:       make([]float64, len(names)),
		last:        make([]float64, len(names)),
		raw:         make([]float64, len(names)),
	}
	for i := range l.last {
		l.last[i] = startSec
	}
	return l
}

// decayTo advances entry i's decay clock to atSec (no-op for past
// timestamps — see the type comment).
func (l *Ledger) decayTo(i int, atSec float64) {
	if dt := atSec - l.last[i]; dt > 0 {
		l.alloc[i] *= math.Exp2(-dt / l.halfLifeSec)
		l.last[i] = atSec
	}
}

// Charge adds qpuSec of allocation to queue i at sim-second atSec.
func (l *Ledger) Charge(i int, atSec, qpuSec float64) {
	l.decayTo(i, atSec)
	l.alloc[i] += qpuSec
	l.raw[i] += qpuSec
}

// DecayedAt returns queue i's decayed allocation as of atSec without
// mutating the entry.
func (l *Ledger) DecayedAt(i int, atSec float64) float64 {
	if dt := atSec - l.last[i]; dt > 0 {
		return l.alloc[i] * math.Exp2(-dt/l.halfLifeSec)
	}
	return l.alloc[i]
}

// Raw returns queue i's undecayed lifetime allocation.
func (l *Ledger) Raw(i int) float64 { return l.raw[i] }

// RawTotal returns the undecayed allocation summed over all queues.
func (l *Ledger) RawTotal() float64 {
	t := 0.0
	for _, v := range l.raw {
		t += v
	}
	return t
}

// Dump writes the ledger as stable text, one queue per line
// (name, decayed-at-atSec, raw), for golden assertions and fairness
// debugging.
func (l *Ledger) Dump(w io.Writer, atSec float64) error {
	for i, name := range l.names {
		if _, err := fmt.Fprintf(w, "%s decayed=%.6f raw=%.6f\n", name, l.DecayedAt(i, atSec), l.raw[i]); err != nil {
			return err
		}
	}
	return nil
}
