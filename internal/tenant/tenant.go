// Package tenant is the multi-tenant brokering layer above
// cloud.Session: the piece that turns a single anonymous submit stream
// into a shared fleet under contention (the paper's §IV-D
// vendor-employed, system-wide management scenario).
//
// Named queues form an optionally hierarchical quota tree — each queue
// carries a deserved share (its slice of fleet capacity), an
// over-quota weight (how aggressively it may claim surplus), and a
// priority band. A Broker sits between tenant submissions and a
// cloud.Session: tenants submit into per-queue backlogs, and at a
// fixed decision cadence the broker releases jobs into the session,
// choosing who goes next from a time-decayed allocation ledger of
// QPU-seconds per queue. When preemption is enabled, a higher-priority
// or starved under-quota queue may withdraw still-queued jobs of
// over-quota queues (Session.CancelWithReason + deterministic requeue
// into the victim's backlog), bounding how long a deserving tenant
// waits behind someone else's backlog.
//
// Determinism contract: the broker runs entirely on the driver
// goroutine, all decisions are pure functions of simulated time and
// the seed, and completion accounting arrives through the session's
// synchronous RecordSink (per-machine buffers merged in a fixed
// order) — never through the asynchronous Observe stream. A
// multi-tenant run is therefore bit-identical at any worker count,
// like everything else in this repo.
package tenant

import (
	"fmt"
	"time"
)

// QueueConfig declares one node of the quota tree.
type QueueConfig struct {
	// Name identifies the queue; session-side fair-share sees its jobs
	// under the user "tenant:<name>".
	Name string
	// Parent nests the queue under another (empty = root). A parent's
	// deserved share divides among its children in proportion to their
	// Share weights; only leaf queues accept submissions.
	Parent string
	// Share is the queue's deserved-share weight relative to its
	// siblings (0 = default 1). Root weights normalize across roots.
	Share float64
	// OverQuotaWeight scales how strongly the queue competes for
	// surplus capacity once it is above its deserved share (0 =
	// default 1; higher = favored for surplus).
	OverQuotaWeight float64
	// Priority is the queue's band: the broker always admits (and,
	// with preemption on, displaces) across bands before consulting
	// fairness within a band.
	Priority int
	// MaxInFlight caps the queue's jobs admitted into the session and
	// not yet recorded (0 = the broker default).
	MaxInFlight int
}

// Config parameterizes a Broker.
type Config struct {
	// Queues is the quota tree in declaration order.
	Queues []QueueConfig
	// HalfLife is the allocation ledger's decay half-life (default
	// 24h): a queue's historical QPU-seconds lose half their weight
	// every HalfLife of simulated time, so fairness is time-aware —
	// yesterday's hog is not punished forever.
	HalfLife time.Duration
	// Tick is the admission-decision cadence in simulated time
	// (default 5m). Smaller ticks cut release latency at the cost of
	// more decision passes.
	Tick time.Duration
	// MaxPerMachine caps broker jobs concurrently admitted-and-
	// unrecorded per machine (default 2). The broker, not the machine
	// queue, is where tenant backlogs live — short machine queues are
	// what make admission order translate into allocation shares.
	MaxPerMachine int
	// DefaultMaxInFlight is the per-queue in-flight cap used when a
	// queue's own MaxInFlight is 0 (0 = unlimited).
	DefaultMaxInFlight int
	// Preemption lets the broker withdraw still-queued jobs of
	// over-quota or lower-priority queues to free machine slots.
	Preemption bool
	// PreemptSlack is the dead band around the deserved share before
	// quota-based preemption triggers (default 0.1 = ±10%).
	PreemptSlack float64
	// MaxPreemptions bounds how often one job can be displaced
	// (default 3); beyond it the job becomes non-preemptible.
	MaxPreemptions int
}

func (c Config) withDefaults() Config {
	if c.HalfLife <= 0 {
		c.HalfLife = 24 * time.Hour
	}
	if c.Tick <= 0 {
		c.Tick = 5 * time.Minute
	}
	if c.MaxPerMachine <= 0 {
		c.MaxPerMachine = 2
	}
	if c.PreemptSlack <= 0 {
		c.PreemptSlack = 0.1
	}
	if c.MaxPreemptions <= 0 {
		c.MaxPreemptions = 3
	}
	return c
}

// queueState is one resolved leaf (or internal) node at runtime.
type queueState struct {
	cfg         QueueConfig
	idx         int     // ledger index (leaves only; -1 for internal nodes)
	deserved    float64 // absolute deserved fraction of fleet capacity
	oqw         float64
	leaf        bool
	maxInFlight int // 0 = unlimited

	pending []*Job // backlog ordered by (arrive, seq)
	// outstanding sums the estimated QPU-seconds of admitted-but-
	// unrecorded jobs: the provisional charge that stops one queue
	// from flooding every free slot between ledger updates.
	outstanding float64
	inFlight    int

	arrived, admitted, done, errored, cancelled, preempted, unserved int
	waitSum, waitMax                                                 float64
	waitN                                                            int
}

// resolveTree validates the quota tree and computes each leaf's
// absolute deserved fraction: roots normalize over root Share weights,
// and every node's fraction divides among its children by their
// weights. Returns queues in declaration order.
func resolveTree(cfgs []QueueConfig) ([]*queueState, map[string]*queueState, error) {
	if len(cfgs) == 0 {
		return nil, nil, fmt.Errorf("tenant: no queues configured")
	}
	byName := make(map[string]*queueState, len(cfgs))
	states := make([]*queueState, 0, len(cfgs))
	for _, qc := range cfgs {
		if qc.Name == "" {
			return nil, nil, fmt.Errorf("tenant: queue with empty name")
		}
		if qc.Share < 0 || qc.OverQuotaWeight < 0 {
			return nil, nil, fmt.Errorf("tenant: queue %q has negative share or over-quota weight", qc.Name)
		}
		if _, dup := byName[qc.Name]; dup {
			return nil, nil, fmt.Errorf("tenant: duplicate queue %q", qc.Name)
		}
		q := &queueState{cfg: qc, idx: -1, leaf: true}
		if q.cfg.Share == 0 {
			q.cfg.Share = 1
		}
		q.oqw = qc.OverQuotaWeight
		if q.oqw == 0 {
			q.oqw = 1
		}
		byName[qc.Name] = q
		states = append(states, q)
	}
	children := make(map[string][]*queueState)
	rootWeight := 0.0
	for _, q := range states {
		p := q.cfg.Parent
		if p == "" {
			rootWeight += q.cfg.Share
			continue
		}
		parent := byName[p]
		if parent == nil {
			return nil, nil, fmt.Errorf("tenant: queue %q has unknown parent %q", q.cfg.Name, p)
		}
		parent.leaf = false
		children[p] = append(children[p], q)
	}
	// Cycle check: walking parents from any node must reach a root
	// within len(states) hops.
	for _, q := range states {
		n := q
		for hops := 0; n.cfg.Parent != ""; hops++ {
			if hops > len(states) {
				return nil, nil, fmt.Errorf("tenant: queue %q is part of a parent cycle", q.cfg.Name)
			}
			n = byName[n.cfg.Parent]
		}
	}
	// Distribute fractions top-down from the roots, so a node's
	// fraction is final before its children divide it.
	frac := make(map[string]float64, len(states))
	for _, q := range states {
		if q.cfg.Parent == "" {
			frac[q.cfg.Name] = q.cfg.Share / rootWeight
		}
	}
	var assign func(name string)
	assign = func(name string) {
		kids := children[name]
		if len(kids) == 0 {
			return
		}
		total := 0.0
		for _, k := range kids {
			total += k.cfg.Share
		}
		for _, k := range kids {
			frac[k.cfg.Name] = frac[name] * k.cfg.Share / total
			assign(k.cfg.Name)
		}
	}
	for _, q := range states {
		if q.cfg.Parent == "" {
			assign(q.cfg.Name)
		}
	}
	for _, q := range states {
		q.deserved = frac[q.cfg.Name]
		q.maxInFlight = q.cfg.MaxInFlight
	}
	return states, byName, nil
}
