package tenant

import (
	"bytes"
	"math"
	"testing"
	"time"
)

// TestLedgerHalfLife pins the decay semantics: a charge loses exactly
// half its weight per half-life while the raw total never decays.
func TestLedgerHalfLife(t *testing.T) {
	l := NewLedger([]string{"a", "b"}, time.Hour, 0)
	l.Charge(0, 0, 100)
	for hls, want := range map[float64]float64{0: 100, 1: 50, 2: 25, 10: 100.0 / 1024} {
		if got := l.DecayedAt(0, hls*3600); math.Abs(got-want) > 1e-9 {
			t.Fatalf("DecayedAt after %v half-lives = %g, want %g", hls, got, want)
		}
	}
	if l.Raw(0) != 100 || l.Raw(1) != 0 || l.RawTotal() != 100 {
		t.Fatalf("raw totals wrong: %g %g %g", l.Raw(0), l.Raw(1), l.RawTotal())
	}
	// DecayedAt must not mutate: repeated reads agree.
	if a, b := l.DecayedAt(0, 7200), l.DecayedAt(0, 7200); a != b {
		t.Fatalf("DecayedAt mutated state: %g then %g", a, b)
	}
}

// TestLedgerOutOfOrderCharge: a charge timestamped before the entry's
// last update applies without decay (the deterministic guard for
// cross-machine record merge order) and never rewinds the clock.
func TestLedgerOutOfOrderCharge(t *testing.T) {
	l := NewLedger([]string{"a"}, time.Hour, 0)
	l.Charge(0, 7200, 10) // two half-lives in
	l.Charge(0, 3600, 10) // late-arriving earlier charge
	if got := l.DecayedAt(0, 7200); math.Abs(got-20) > 1e-9 {
		t.Fatalf("decayed after out-of-order charge = %g, want 20", got)
	}
	// The clock stayed at 7200: a read at 3600 sees no *extra* decay.
	if got := l.DecayedAt(0, 3600); got != 20 {
		t.Fatalf("decayed at earlier instant = %g, want 20 (clock must not rewind)", got)
	}
	if got := l.Raw(0); got != 20 {
		t.Fatalf("raw = %g, want 20", got)
	}
}

// TestLedgerAccumulation: charges at the same instant add linearly and
// later charges decay earlier ones.
func TestLedgerAccumulation(t *testing.T) {
	l := NewLedger([]string{"a"}, time.Hour, 0)
	l.Charge(0, 0, 40)
	l.Charge(0, 0, 60)
	if got := l.DecayedAt(0, 0); got != 100 {
		t.Fatalf("same-instant charges = %g, want 100", got)
	}
	l.Charge(0, 3600, 10)
	if got := l.DecayedAt(0, 3600); math.Abs(got-60) > 1e-9 {
		t.Fatalf("after one half-life + 10 = %g, want 60", got)
	}
}

// TestLedgerDumpStable pins the dump format tests and the CLI assert
// bit-identity on.
func TestLedgerDumpStable(t *testing.T) {
	l := NewLedger([]string{"a", "b"}, time.Hour, 0)
	l.Charge(0, 0, 100)
	var buf bytes.Buffer
	if err := l.Dump(&buf, 3600); err != nil {
		t.Fatal(err)
	}
	want := "a decayed=50.000000 raw=100.000000\nb decayed=0.000000 raw=0.000000\n"
	if buf.String() != want {
		t.Fatalf("dump:\n%s\nwant:\n%s", buf.String(), want)
	}
}
