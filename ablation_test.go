// Ablation benchmarks for the design choices DESIGN.md calls out:
// routing trial count, layout method, stale re-compilation, and
// vendor-side scheduling policies. These report domain metrics
// (swaps, CX counts, POS, queue minutes) via b.ReportMetric alongside
// wall time.
package qcloud_test

import (
	"testing"
	"time"

	"qcloud/internal/analysis"
	"qcloud/internal/backend"
	"qcloud/internal/circuit/gens"
	"qcloud/internal/cloud"
	"qcloud/internal/compile"
	"qcloud/internal/sched"
	"qcloud/internal/workload"
)

// BenchmarkAblationRoutingTrials measures how stochastic-swap trial
// count trades compile time against inserted swaps.
func BenchmarkAblationRoutingTrials(b *testing.B) {
	m := backend.FleetByName()["ibmq_guadalupe"]
	cal := m.CalibrationAt(time.Date(2021, 3, 1, 12, 0, 0, 0, time.UTC))
	circ := gens.QFT(12)
	for _, trials := range []int{1, 4, 8} {
		trials := trials
		b.Run(map[int]string{1: "trials=1", 4: "trials=4", 8: "trials=8"}[trials], func(b *testing.B) {
			totalSwaps := 0
			for i := 0; i < b.N; i++ {
				res, err := compile.Compile(circ, m, cal, compile.Options{Seed: int64(i), RoutingTrials: trials})
				if err != nil {
					b.Fatal(err)
				}
				totalSwaps += res.SwapsInserted
			}
			b.ReportMetric(float64(totalSwaps)/float64(b.N), "swaps/op")
		})
	}
}

// BenchmarkAblationLayoutMethod compares the layout strategies by the
// CX count of the compiled circuit (lower is better for fidelity).
func BenchmarkAblationLayoutMethod(b *testing.B) {
	m := backend.FleetByName()["ibmq_toronto"]
	cal := m.CalibrationAt(time.Date(2021, 3, 1, 12, 0, 0, 0, time.UTC))
	circ := gens.QFTBench(5)
	cases := []struct {
		name string
		opts compile.Options
	}{
		{"csp+noise", compile.Options{}},
		{"noise-only", compile.Options{SkipCSP: true}},
		{"dense-only", compile.Options{SkipCSP: true}}, // nil cal below
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			calArg := cal
			if c.name == "dense-only" {
				calArg = nil
			}
			totalCX := 0
			for i := 0; i < b.N; i++ {
				opts := c.opts
				opts.Seed = int64(i)
				res, err := compile.Compile(circ, m, calArg, opts)
				if err != nil {
					b.Fatal(err)
				}
				totalCX += res.Metrics.CXCount
			}
			b.ReportMetric(float64(totalCX)/float64(b.N), "cx/op")
		})
	}
}

// BenchmarkAblationStaleCompile quantifies the re-compilation payoff
// (§V-E.2): fresh-vs-stale POS gap per run.
func BenchmarkAblationStaleCompile(b *testing.B) {
	m := backend.FleetByName()["ibmq_toronto"]
	t0 := time.Date(2021, 3, 1, 15, 0, 0, 0, time.UTC)
	for i := 0; i < b.N; i++ {
		res, err := analysis.StaleCompilationPenalty(m, 4, 3, 4, 200, t0, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric((res.FreshPOS-res.StalePOS)*100, "POSgap%")
	}
}

// BenchmarkAblationScheduler compares placement policies end to end:
// realized mean queue minutes under each policy on a three-month
// window.
func BenchmarkAblationScheduler(b *testing.B) {
	cfg := cloud.Config{
		Seed:  3,
		Start: time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC),
	}
	est, err := sched.BuildEstimator(cfg)
	if err != nil {
		b.Fatal(err)
	}
	specs := workload.Generate(workload.Config{
		Seed: 3, TotalJobs: 500, Start: cfg.Start, End: cfg.End, GrowthPerMonth: 0.05,
	})
	policies := []sched.Policy{
		sched.UserChoice{}, sched.LeastPending{}, sched.PredictedWait{}, sched.FidelityAware{},
	}
	for _, p := range policies {
		p := p
		b.Run(p.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sum, _, err := sched.Evaluate(cfg, specs, p, est)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(sum.MeanQueueMin, "queueMin")
				b.ReportMetric(sum.MeanEstFidelity*100, "fid%")
			}
		})
	}
}

// BenchmarkAblationMultiProgram measures the utilization gain and cost
// of co-compiling two programs versus one.
func BenchmarkAblationMultiProgram(b *testing.B) {
	m := backend.FleetByName()["ibmq_16_melbourne"]
	cal := m.CalibrationAt(time.Date(2021, 3, 1, 12, 0, 0, 0, time.UTC))
	a, c := gens.GHZ(4), gens.QFTBench(4)
	b.Run("single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := compile.Compile(a, m, cal, compile.Options{Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(res.Circ.UsedQubits()))/float64(m.NumQubits())*100, "util%")
		}
	})
	b.Run("multi", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := compile.MultiProgram(a, c, m, cal, compile.Options{Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Utilization*100, "util%")
		}
	})
}

// BenchmarkAblationRouter compares the two routing algorithms on a
// dense workload: swaps inserted and wall time per compile.
func BenchmarkAblationRouter(b *testing.B) {
	m := backend.FleetByName()["ibmq_16_melbourne"]
	cal := m.CalibrationAt(time.Date(2021, 3, 1, 12, 0, 0, 0, time.UTC))
	circ := gens.QFT(10)
	for _, router := range []string{"stochastic", "sabre"} {
		router := router
		b.Run(router, func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				res, err := compile.Compile(circ, m, cal, compile.Options{Seed: int64(i), Router: router, SkipCSP: true})
				if err != nil {
					b.Fatal(err)
				}
				total += res.SwapsInserted
			}
			b.ReportMetric(float64(total)/float64(b.N), "swaps/op")
		})
	}
}
