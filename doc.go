// Package qcloud reproduces "Quantum Computing in the Cloud: Analyzing
// job and machine characteristics" (IISWC 2021) as a Go library: a
// quantum-circuit IR and Qiskit-style transpiler, machine/calibration
// models of the IBM fleet, a noisy state-vector simulator, a
// discrete-event cloud simulator with fair-share queues and background
// load, a two-year synthetic workload, and analyses regenerating every
// figure of the paper. See README.md and DESIGN.md.
//
// The root package exists only to anchor the per-figure benchmarks in
// bench_test.go; all functionality lives under internal/.
package qcloud
