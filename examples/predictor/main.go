// Predictor: train the paper's Π(aᵢ + bᵢ·xᵢ) execution-time model on a
// generated trace and report the per-machine Pearson correlation for
// each cumulative feature set — the Fig 15 workflow, showing batch size
// dominating and shots refining the prediction.
package main

import (
	"fmt"
	"log"

	"qcloud/internal/analysis"
	"qcloud/internal/cloud"
	"qcloud/internal/predict"
	"qcloud/internal/workload"
)

func main() {
	log.SetFlags(0)
	fmt.Println("generating a study trace (seed 7)...")
	specs := workload.Generate(workload.Config{Seed: 7, TotalJobs: 4000})
	tr, err := cloud.Simulate(cloud.Config{Seed: 7}, specs)
	if err != nil {
		log.Fatal(err)
	}

	preds := analysis.PredictionCorrelations(tr, 100, 7)
	sets := predict.CumulativeSets()
	fmt.Printf("\n%-22s %5s", "machine", "jobs")
	for _, set := range sets {
		fmt.Printf(" %9s", set[len(set)-1])
	}
	fmt.Println()
	for _, p := range preds {
		fmt.Printf("%-22s %5d", p.Machine, p.Jobs)
		for _, c := range p.Correlations {
			fmt.Printf(" %9.3f", c)
		}
		fmt.Println()
	}
	fmt.Println("\nBatch size alone already predicts runtime strongly; adding shots")
	fmt.Println("captures most of the remainder — circuit structure barely matters,")
	fmt.Println("the paper's §VI-C observation about NISQ-era execution overheads.")
}
