// Scheduler: the paper's §IV-D recommendation realized two ways and
// compared head to head on a three-month slice of the cloud.
//
// Offline (estimator + replay): a background-only pre-simulation
// yields stale sampled queue lengths; policies rewrite the whole
// workload up-front and the result is replayed through the simulator.
//
// Online (session): each job is decided at its actual submit instant
// from live QueueState snapshots — exact pending counts, the queued
// backlog's predicted runtimes, and the maintenance calendar — with
// no pre-simulation at all, then submitted mid-run into the same
// event-driven session the jobs execute in.
package main

import (
	"fmt"
	"log"
	"time"

	"qcloud/internal/cloud"
	"qcloud/internal/sched"
	"qcloud/internal/workload"
)

func main() {
	log.SetFlags(0)
	cfg := cloud.Config{
		Seed:  11,
		Start: time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC),
	}
	specs := workload.Generate(workload.Config{
		Seed: 11, TotalJobs: 900,
		Start: cfg.Start, End: cfg.End, GrowthPerMonth: 0.05,
	})
	header := fmt.Sprintf("%-22s %12s %12s %12s %10s %10s",
		"policy", "medQ (min)", "meanQ (min)", "p90Q (min)", "estFid", "cancelled")
	row := func(s sched.Summary) {
		fmt.Printf("%-22s %12.1f %12.1f %12.1f %9.1f%% %9.1f%%\n",
			s.Policy, s.MedianQueueMin, s.MeanQueueMin, s.P90QueueMin,
			s.MeanEstFidelity*100, s.CancelledFraction*100)
	}

	fmt.Println("A: offline estimator + replay (stale sampled queue lengths)")
	fmt.Println("building queue estimator from background load (3 months)...")
	est, err := sched.BuildEstimator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placing and replaying %d study jobs under each policy...\n\n", len(specs))
	fmt.Println(header)
	offline := []sched.Policy{
		sched.UserChoice{},
		sched.LeastPending{},
		sched.PredictedWait{},
		sched.FidelityAware{WaitPenaltyPerHour: 0.01},
	}
	var offlineBest sched.Summary
	for i, p := range offline {
		sum, _, err := sched.Evaluate(cfg, specs, p, est)
		if err != nil {
			log.Fatal(err)
		}
		row(sum)
		if i == 0 || sum.MeanQueueMin < offlineBest.MeanQueueMin {
			offlineBest = sum
		}
	}

	fmt.Println("\nB: online sessions (live QueueState at each submit instant)")
	fmt.Println("no pre-simulation: policies read the open session's queues directly.")
	fmt.Println()
	fmt.Println(header)
	f := sched.NewFleetInfo(cfg)
	online := []sched.OnlinePolicy{
		sched.LiveUserChoice{},
		sched.LiveLeastPending{},
		sched.LiveShortestWait{},
		sched.LiveFidelityAware{WaitPenaltyPerHour: 0.01},
	}
	var liveShortest sched.Summary
	for _, p := range online {
		sum, _, err := sched.EvaluateOnline(cfg, specs, p, f)
		if err != nil {
			log.Fatal(err)
		}
		row(sum)
		if sum.Policy == (sched.LiveShortestWait{}).Name() {
			liveShortest = sum
		}
	}

	fmt.Println("\nVendor-side machine-aware placement collapses queue times relative to")
	fmt.Println("user heuristics in both pipelines; the fidelity-aware variants trade a")
	fmt.Println("little latency back for better-calibrated machines (§V-E.3).")
	fmt.Printf("\nA/B: live shortest-wait mean queue %.1f min vs best offline %.1f min (%s)\n",
		liveShortest.MeanQueueMin, offlineBest.MeanQueueMin, offlineBest.Policy)
	fmt.Println("— the online scheduler sees the backlog that exists, not a half-hour-old")
	fmt.Println("sample, and routes around scheduled maintenance windows.")
}
