// Scheduler: the paper's §IV-D recommendation realized — compare user
// machine choice against vendor-side placement policies (least-pending,
// predicted-wait, fidelity-aware) on a three-month slice of the cloud,
// reporting the realized queue times and estimated fidelity of each.
package main

import (
	"fmt"
	"log"
	"time"

	"qcloud/internal/cloud"
	"qcloud/internal/sched"
	"qcloud/internal/workload"
)

func main() {
	log.SetFlags(0)
	cfg := cloud.Config{
		Seed:  11,
		Start: time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC),
	}
	fmt.Println("building queue estimator from background load (3 months)...")
	est, err := sched.BuildEstimator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	specs := workload.Generate(workload.Config{
		Seed: 11, TotalJobs: 900,
		Start: cfg.Start, End: cfg.End, GrowthPerMonth: 0.05,
	})
	fmt.Printf("placing and replaying %d study jobs under each policy...\n\n", len(specs))

	policies := []sched.Policy{
		sched.UserChoice{},
		sched.LeastPending{},
		sched.PredictedWait{},
		sched.FidelityAware{WaitPenaltyPerHour: 0.01},
	}
	fmt.Printf("%-16s %12s %12s %12s %10s %10s\n",
		"policy", "medQ (min)", "meanQ (min)", "p90Q (min)", "estFid", "cancelled")
	for _, p := range policies {
		sum, _, err := sched.Evaluate(cfg, specs, p, est)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %12.1f %12.1f %12.1f %9.1f%% %9.1f%%\n",
			sum.Policy, sum.MedianQueueMin, sum.MeanQueueMin, sum.P90QueueMin,
			sum.MeanEstFidelity*100, sum.CancelledFraction*100)
	}
	fmt.Println("\nVendor-side machine-aware placement (predicted-wait) collapses queue")
	fmt.Println("times relative to user heuristics; the fidelity-aware policy trades a")
	fmt.Println("little of that latency back for better-calibrated machines — the")
	fmt.Println("user-constrained trade-off of §V-E.3.")
}
