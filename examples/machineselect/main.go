// Machine selection via compile-time CX metrics — the workflow the
// paper recommends in §IV-B (Fig 7): compile the application for every
// candidate machine, inspect CX-depth/CX-total scaled by calibrated CX
// error, and pick the machine the metrics favor. The example then
// verifies the choice with noisy trajectory simulation.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"strings"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/circuit/gens"
	"qcloud/internal/compile"
	"qcloud/internal/qsim"
)

func main() {
	log.SetFlags(0)
	const width = 4
	bench := gens.QFTBench(width)
	expected := strings.Repeat("0", width)
	at := time.Date(2021, 3, 10, 15, 0, 0, 0, time.UTC)

	type row struct {
		machine    string
		cxTotal    int
		cxTotalErr float64
		estimate   float64
		measured   float64
	}
	var rows []row
	byName := backend.FleetByName()
	for _, name := range []string{"ibmq_casablanca", "ibmq_toronto", "ibmq_guadalupe", "ibmq_rome", "ibmq_manhattan"} {
		m := byName[name]
		cal := m.CalibrationAt(at)
		res, err := compile.Compile(bench, m, cal, compile.Options{Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		// Compile-time metric: CX count x mean CX error on the used
		// couplers (available before ever queuing on the machine).
		errSum, n := 0.0, 0
		for _, g := range res.Circ.Gates {
			if g.Op.IsTwoQubit() {
				errSum += cal.CXError(g.Qubits[0], g.Qubits[1], cal.MeanCXError())
				n++
			}
		}
		meanErr := errSum / float64(n)
		est := qsim.EstimatePOS(res.Circ, cal, 0)

		// Ground truth: noisy trajectory simulation.
		compacted, origOf := qsim.Compact(res.Circ)
		noise := qsim.NoiseFromCalibration(cal, 0).Remap(origOf)
		pos, err := qsim.ProbabilityOfSuccess(compacted, expected, 1200, noise, rand.New(rand.NewSource(4)))
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{
			machine: name, cxTotal: res.Metrics.CXCount,
			cxTotalErr: float64(res.Metrics.CXCount) * meanErr,
			estimate:   est, measured: pos,
		})
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].cxTotalErr < rows[j].cxTotalErr })
	fmt.Printf("%-18s %9s %12s %14s %14s\n", "machine", "CX-Total", "CX-T*Err", "estimated POS", "simulated POS")
	for _, r := range rows {
		fmt.Printf("%-18s %9d %12.3f %13.1f%% %13.1f%%\n",
			r.machine, r.cxTotal, r.cxTotalErr, r.estimate*100, r.measured*100)
	}
	fmt.Printf("\nCX metrics pick %s without running a single shot on hardware.\n", rows[0].machine)
}
