// Queueing study: submit the same circuits to the simulated cloud with
// three batching strategies and compare per-circuit queuing overhead —
// the §V-C trade-off (Fig 11: "batching reduces effective per-circuit
// queuing times") on a small, fast scenario.
//
// Each strategy runs through an event-driven cloud session: jobs are
// submitted day by day as the session advances (the way a real client
// drips work into the queue), and the study's own lifecycle is watched
// on the session event stream rather than reconstructed from the trace.
package main

import (
	"fmt"
	"log"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/cloud"
	"qcloud/internal/stats"
	"qcloud/internal/trace"
)

func main() {
	log.SetFlags(0)
	start := time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC)
	end := start.AddDate(0, 1, 0)

	// 900 circuits/day for a week, as single-circuit jobs, 90-circuit
	// batches, or one maxed 900-circuit batch per day.
	strategies := []struct {
		name  string
		batch int
	}{
		{"unbatched (900 x batch 1)", 1},
		{"moderate (10 x batch 90)", 90},
		{"maxed    (1 x batch 900)", 900},
	}

	athens, err := backend.FindMachine(backend.Fleet(), "ibmq_athens")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %8s %16s %20s %14s %9s\n",
		"strategy", "jobs", "perJobQ med(min)", "perCircuitQ med(min)", "exec med(min)", "cancelled")
	for si, s := range strategies {
		sess, err := cloud.Open(cloud.Config{
			Seed: int64(100 + si), Start: start, End: end,
			Machines: []*backend.Machine{athens},
		})
		if err != nil {
			log.Fatal(err)
		}
		// Watch our own jobs' terminal events while the session runs.
		done := make(chan [2]int, 1)
		events, err := sess.Observe(cloud.EventFilter{
			StudyOnly: true,
			Kinds:     []cloud.EventKind{cloud.EventDone, cloud.EventError, cloud.EventCancel},
		})
		if err != nil {
			log.Fatal(err)
		}
		go func() {
			finished, cancelled := 0, 0
			for ev := range events {
				if ev.Kind == cloud.EventCancel {
					cancelled++
				} else {
					finished++
				}
			}
			done <- [2]int{finished, cancelled}
		}()
		// Drip each day's submissions in as the session reaches it —
		// mid-run submission, not an up-front batch.
		for day := 0; day < 7; day++ {
			base := start.AddDate(0, 0, 7+day).Add(14 * time.Hour)
			sess.AdvanceTo(base)
			nJobs := 900 / s.batch
			for j := 0; j < nJobs; j++ {
				_, err := sess.Submit(&cloud.JobSpec{
					SubmitTime: base.Add(time.Duration(j) * 30 * time.Second),
					User:       "client",
					Machine:    "ibmq_athens",
					BatchSize:  s.batch,
					Shots:      4096,
					Width:      4, TotalDepth: 40 * s.batch,
					TotalGateOps: 120 * s.batch, CXTotal: 30 * s.batch, MemSlots: 4,
					CircuitName: "qft4",
				})
				if err != nil {
					log.Fatal(err)
				}
			}
		}
		tr, err := sess.Run()
		if err != nil {
			log.Fatal(err)
		}
		counts := <-done
		var perJob, perCirc, exec []float64
		for _, j := range tr.Jobs {
			if j.Status == trace.StatusCancelled {
				continue
			}
			q := j.QueueSeconds() / 60
			perJob = append(perJob, q)
			perCirc = append(perCirc, q/float64(j.BatchSize))
			exec = append(exec, j.ExecSeconds()/60)
		}
		fmt.Printf("%-28s %8d %16.1f %20.4f %14.1f %9d\n",
			s.name, counts[0], stats.Median(perJob), stats.Median(perCirc), stats.Median(exec), counts[1])
	}
	fmt.Println("\nLarger batches pay the queue once for the whole batch: per-circuit")
	fmt.Println("queuing collapses, exactly the Fig 11 effect the paper reports.")
}
