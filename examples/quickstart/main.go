// Quickstart: build a circuit, compile it for a real IBM-style backend
// under that backend's current calibration, and execute it on the noisy
// state-vector simulator — the end-to-end path every other example and
// experiment builds on.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/circuit/gens"
	"qcloud/internal/compile"
	"qcloud/internal/qsim"
)

func main() {
	log.SetFlags(0)

	// 1. A 4-qubit GHZ circuit.
	circ := gens.GHZ(4)
	fmt.Println("source circuit:")
	fmt.Print(circ)

	// 2. Pick a backend and its calibration snapshot.
	machine, err := backend.FindMachine(backend.Fleet(), "ibmq_vigo")
	if err != nil {
		log.Fatal(err)
	}
	cal := machine.CalibrationAt(time.Date(2021, 3, 15, 10, 0, 0, 0, time.UTC))

	// 3. Compile: layout, routing, basis translation, optimization.
	res, err := compile.Compile(circ, machine, cal, compile.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompiled for %s: %d gates, depth %d, %d CX, layout %v (%s)\n",
		machine.Name, res.Metrics.GateOps, res.Metrics.Depth,
		res.Metrics.CXCount, res.Layout, res.LayoutMethod)

	// 4. Execute 2000 noisy shots using the calibration-derived noise.
	compacted, origOf := qsim.Compact(res.Circ)
	noise := qsim.NoiseFromCalibration(cal, 0).Remap(origOf)
	counts, err := qsim.Run(compacted, 2000, noise, rand.New(rand.NewSource(2)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnoisy counts (GHZ ideally yields only 0000 and 1111):")
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return counts[keys[i]] > counts[keys[j]] })
	for _, k := range keys {
		fmt.Printf("  %s: %4d\n", k, counts[k])
	}
	fid := counts.Prob("0000") + counts.Prob("1111")
	fmt.Printf("\nGHZ fidelity proxy: %.1f%%\n", fid*100)
}
