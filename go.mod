module qcloud

go 1.24
