// qcloud-compilebench runs the Fig 5 per-pass compile-time experiment
// at configurable sizes: a small QFT against a real machine and a large
// QFT against the fake 1000-qubit machine. The paper's full-size
// instance is -small 64 -large 980; the default is scaled down so the
// run finishes in seconds, with the same qualitative shape.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"qcloud/internal/analysis"
	"qcloud/internal/backend"
	"qcloud/internal/par"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qcloud-compilebench: ")
	var (
		smallN  = flag.Int("small", 16, "small QFT width")
		smallM  = flag.String("small-machine", "ibmq_20_tokyo", "machine for the small compile")
		largeN  = flag.Int("large", 96, "large QFT width (paper: 980; hours of runtime)")
		largeMQ = flag.Int("large-qubits", 1000, "fake machine size for the large compile")
		seed    = flag.Int64("seed", 7, "seed for stochastic passes")
		workers = flag.Int("workers", 0, "worker pool size (0 = NumCPU, 1 = serial; the small/large compiles overlap when > 1)")
	)
	flag.Parse()
	par.SetWorkers(*workers)

	small, err := backend.FindMachine(backend.Fleet(), *smallM)
	if err != nil {
		log.Fatal(err)
	}
	large := backend.Fake1000()
	if *largeMQ != 1000 {
		large = backend.CustomMachine(fmt.Sprintf("fake_%dq", *largeMQ), backend.HeavyHexLike(*largeMQ), 0)
	}
	fmt.Printf("small: qft%d -> %s (%dq)\n", *smallN, small.Name, small.NumQubits())
	fmt.Printf("large: qft%d -> %s (%dq)\n", *largeN, large.Name, large.NumQubits())

	costs, err := analysis.CompilePassProfile(*smallN, small, *largeN, large, *seed)
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(costs, func(i, j int) bool { return costs[i].LargeSec > costs[j].LargeSec })
	var ts, tl float64
	fmt.Printf("%-34s %12s %12s %9s\n", "pass", "small (s)", "large (s)", "ratio")
	for _, c := range costs {
		fmt.Printf("%-34s %12.6f %12.6f %9.1f\n", c.Pass, c.SmallSec, c.LargeSec, c.LargeSec/(c.SmallSec+1e-12))
		ts += c.SmallSec
		tl += c.LargeSec
	}
	fmt.Printf("%-34s %12.6f %12.6f %9.1f\n", "TOTAL", ts, tl, tl/(ts+1e-12))
}
