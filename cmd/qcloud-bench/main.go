// qcloud-bench runs the simulator figure benchmarks (the Fig 7
// probability-of-success substrate: statevector scaling, trajectory
// shot throughput, and the five-machine fidelity sweep) and emits a
// machine-readable BENCH_<date>.json with ns/op, allocs/op and
// serial-vs-parallel / fused-vs-unfused speedups per figure. CI runs it
// on every push and uploads the JSON as a workflow artifact; the
// committed BENCH_*.json files record how those numbers moved across
// PRs (pass a previous report with -baseline to embed it).
//
// Usage:
//
//	qcloud-bench -iters 5 -out BENCH_2026-07-29.json
//	qcloud-bench -iters 1 -maxwidth 16 -journal-jobs 20000 -md  # quick CI smoke
//	qcloud-bench -baseline BENCH_old.json -md                   # compare + embed
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"qcloud/internal/analysis"
	"qcloud/internal/backend"
	"qcloud/internal/circuit"
	"qcloud/internal/circuit/gens"
	"qcloud/internal/cloud"
	"qcloud/internal/compile"
	"qcloud/internal/par"
	"qcloud/internal/qsim"
	"qcloud/internal/tenant"
	"qcloud/internal/workload"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Speedup pairs two variants of the same figure benchmark.
type Speedup struct {
	Figure  string  `json:"figure"`
	Against string  `json:"against"`
	BaseNs  float64 `json:"base_ns_per_op"`
	NewNs   float64 `json:"ns_per_op"`
	Speedup float64 `json:"speedup"`
}

// KernelSweepRow records one circuit's compiled op-stream length per
// fusion setting: how many amplitude sweeps a shot costs unfused, with
// PR 2's 1q-chain + diagonal-run fusion, and with 2q block fusion.
type KernelSweepRow struct {
	Circuit string `json:"circuit"`
	Unfused int    `json:"unfused_ops"`
	Fused1Q int    `json:"fused_1q_ops"`
	Blocked int    `json:"blocked_2q_ops"`
}

// JournalSessionRow records one constant-memory contract run: the same
// year-long study stream through an in-memory session and a journaled
// one. HeldTraceEntries is the peak-RSS proxy — finished trace records
// retained in memory at window end — which is O(jobs) in-memory and 0
// journaled, no matter the job count.
type JournalSessionRow struct {
	Mode             string  `json:"mode"`
	Jobs             int     `json:"jobs"`
	Seconds          float64 `json:"seconds"`
	JobsPerSec       float64 `json:"jobs_per_sec"`
	HeldTraceEntries int     `json:"held_trace_entries"`
	JournalRecords   int64   `json:"journal_records,omitempty"`
	JournalBytes     int64   `json:"journal_bytes,omitempty"`
	RecordsPerSec    float64 `json:"journal_records_per_sec,omitempty"`
	BytesPerJob      float64 `json:"journal_bytes_per_job,omitempty"`
	Checkpoints      int     `json:"checkpoints,omitempty"`
}

// Report is the emitted BENCH_*.json document.
type Report struct {
	Label string `json:"label,omitempty"`
	// Notes is free-form context for the recorded numbers (what changed
	// since the baseline, what the run is meant to establish).
	Notes     string    `json:"notes,omitempty"`
	Date      string    `json:"date"`
	GoVersion string    `json:"go_version"`
	NumCPU    int       `json:"num_cpu"`
	Iters     int       `json:"iterations_per_benchmark"`
	Results   []Result  `json:"results"`
	Speedups  []Speedup `json:"speedups"`
	// KernelSweeps records per-circuit kernel-sweep counts under each
	// fusion setting (the lever 2q block fusion pulls).
	KernelSweeps []KernelSweepRow `json:"kernel_sweeps,omitempty"`
	// JournalSessions records the journaled-vs-in-memory session rows
	// (events/sec, bytes/job, held trace entries).
	JournalSessions []JournalSessionRow `json:"journal_sessions,omitempty"`
	// Baseline embeds a previous report (typically the pre-change
	// numbers) so one committed file records both sides of a change.
	Baseline *Report `json:"baseline,omitempty"`
}

func (r *Report) find(name string) *Result {
	for i := range r.Results {
		if r.Results[i].Name == name {
			return &r.Results[i]
		}
	}
	return nil
}

// measure times iters runs of f with the GC quiesced, recording
// wall-clock and allocation deltas per op. One untimed warm-up run
// precedes the clock so first-at-size page faults and heap growth do
// not land on whichever variant happens to run first (at 22q the cold
// first evolution is ~35% slower than every later one).
func measure(name string, iters int, f func() error) (Result, error) {
	if err := f(); err != nil {
		return Result{}, fmt.Errorf("%s: %w", name, err)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := f(); err != nil {
			return Result{}, fmt.Errorf("%s: %w", name, err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return Result{
		Name:        name,
		Iterations:  iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(iters),
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(iters),
	}, nil
}

// measureOnce is measure without the warm-up and with a single timed
// run — for the million-job journal rows, where one pass writes
// hundreds of MB of WAL and the warm-up+iters loop would dominate the
// whole bench.
func measureOnce(name string, f func() error) (Result, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := f(); err != nil {
		return Result{}, fmt.Errorf("%s: %w", name, err)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return Result{
		Name:        name,
		Iterations:  1,
		NsPerOp:     float64(elapsed.Nanoseconds()),
		BytesPerOp:  int64(after.TotalAlloc - before.TotalAlloc),
		AllocsPerOp: int64(after.Mallocs - before.Mallocs),
	}, nil
}

// simModes mirrors the bench_test.go variants: serial (full 2q-blocked
// fusion), a 4-worker pool, the PR 2 engine (1q/diagonal fusion only),
// and the pre-fusion engine — the Fusion2Q A/B trio plus parallelism.
var simModes = []struct {
	name string
	par  qsim.Parallelism
}{
	{"serial", qsim.Parallelism{Workers: 1}},
	{"parallel-4", qsim.Parallelism{Workers: 4}},
	{"serial-no2q", qsim.Parallelism{Workers: 1, DisableFusion2Q: true}},
	{"serial-unfused", qsim.Parallelism{Workers: 1, DisableFusion: true}},
}

// fig7Jobs compiles the Fig 7 fidelity workload (the n-qubit QFT POS
// benchmark on the paper's five machines) into simulator-ready batch
// jobs, replicated reps times with distinct seeds so the sweep has the
// many-small-jobs shape the batched dispatcher targets.
func fig7Jobs(machines []*backend.Machine, n, shots, reps int, at time.Time, seed int64) ([]qsim.BatchJob, error) {
	var jobs []qsim.BatchJob
	for _, m := range machines {
		cal := m.CalibrationAt(at)
		res, err := compile.Compile(gens.QFTBench(n), m, cal, compile.Options{Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.Name, err)
		}
		compacted, origOf := qsim.Compact(res.Circ)
		noise := qsim.NoiseFromCalibration(cal, 0).Remap(origOf)
		for rep := 0; rep < reps; rep++ {
			jobs = append(jobs, qsim.BatchJob{
				Circ:  compacted,
				Shots: shots,
				Noise: noise,
				Seed:  seed + m.Seed + int64(rep)*7919,
			})
		}
	}
	return jobs, nil
}

func run(iters, maxWidth, shots, journalJobs, tenantJobs int) (*Report, error) {
	rep := &Report{
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Iters:     iters,
	}
	add := func(res Result, err error) error {
		if err != nil {
			return err
		}
		rep.Results = append(rep.Results, res)
		log.Printf("%-44s %14.0f ns/op %9d allocs/op", res.Name, res.NsPerOp, res.AllocsPerOp)
		return nil
	}

	// Statevector scaling: exact QFT evolution across register widths.
	for _, n := range []int{8, 12, 16, 20, 22} {
		if n > maxWidth {
			continue
		}
		circ := gens.QFTBench(n)
		for _, mode := range simModes {
			mode := mode
			r := rand.New(rand.NewSource(1))
			name := fmt.Sprintf("StatevectorScaling/%dq/%s", n, mode.name)
			err := add(measure(name, iters, func() error {
				_, err := qsim.RunOpts(circ, 1, nil, r, mode.par)
				return err
			}))
			if err != nil {
				return nil, err
			}
		}
	}

	// Trajectory shots: the noisy 10q POS benchmark.
	trajCirc := gens.QFTBench(10)
	noise := qsim.UniformNoise(0.001, 0.01, 0.02)
	for _, mode := range simModes {
		mode := mode
		r := rand.New(rand.NewSource(2))
		name := "TrajectoryShots/" + mode.name
		err := add(measure(name, iters, func() error {
			_, err := qsim.RunOpts(trajCirc, shots, noise, r, mode.par)
			return err
		}))
		if err != nil {
			return nil, err
		}
	}

	// Fig 7: the five-machine fidelity sweep (compile + noisy POS).
	byName := backend.FleetByName()
	var machines []*backend.Machine
	for _, n := range []string{"ibmq_casablanca", "ibmq_toronto", "ibmq_guadalupe", "ibmq_rome", "ibmq_manhattan"} {
		machines = append(machines, byName[n])
	}
	at := time.Date(2021, 3, 10, 12, 0, 0, 0, time.UTC)
	for _, mode := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel-4", 4}} {
		mode := mode
		par.SetWorkers(mode.workers)
		seed := int64(0)
		name := "Fig07Fidelity/" + mode.name
		err := add(measure(name, iters, func() error {
			seed++
			_, err := analysis.FidelityVsCXMetrics(machines, 4, 300, at, seed)
			return err
		}))
		par.SetWorkers(0)
		if err != nil {
			return nil, err
		}
	}

	// BatchedSweep: the Fig 7 trajectory sweep's simulation workload
	// (the five compiled machines, `shots` shots each) under three
	// dispatchers at equal worker count: the PR 2 baseline (a serial
	// pool per job inside a parallel sweep, no 2q fusion), the same
	// per-job dispatch with 2q blocking, and one shared BatchRun pool
	// with 2q blocking. Five jobs on four workers is where per-job
	// pools leave a straggler tail — the shape pool batching fixes.
	// sweepReps replicates each machine's job; the kernel-sweep rows
	// below index sweepJobs[i*sweepReps] for machine i, so keep the two
	// in sync when scaling the sweep up.
	const sweepReps = 1
	sweepJobs, err := fig7Jobs(machines, 4, shots, sweepReps, at, 12)
	if err != nil {
		return nil, err
	}
	perJob := func(p qsim.Parallelism) func() error {
		return func() error {
			errs := make([]error, len(sweepJobs))
			par.ForEach(len(sweepJobs), 0, func(i int) {
				r := rand.New(rand.NewSource(sweepJobs[i].Seed))
				_, err := qsim.RunOpts(sweepJobs[i].Circ, sweepJobs[i].Shots, sweepJobs[i].Noise, r, p)
				errs[i] = err
			})
			return par.FirstError(errs)
		}
	}
	batched := func(p qsim.Parallelism) func() error {
		return func() error {
			for _, res := range qsim.BatchRun(sweepJobs, p) {
				if res.Err != nil {
					return res.Err
				}
			}
			return nil
		}
	}
	for _, mode := range []struct {
		name string
		f    func() error
	}{
		{"BatchedSweep/per-job-no2q", perJob(qsim.Parallelism{Workers: 1, DisableFusion2Q: true})},
		{"BatchedSweep/per-job", perJob(qsim.Parallelism{Workers: 1})},
		{"BatchedSweep/batched", batched(qsim.Parallelism{Workers: 4})},
	} {
		par.SetWorkers(4)
		err := add(measure(mode.name, iters, mode.f))
		par.SetWorkers(0)
		if err != nil {
			return nil, err
		}
	}

	// Kernel-sweep counts per compiled circuit: the op-stream length a
	// shot executes under each fusion setting.
	sweepCircs := []struct {
		name string
		circ *circuit.Circuit
	}{
		{"qftbench10", gens.QFTBench(10)},
		{"qaoa-ring8-p2", gens.QAOAMaxCut(8, gens.RingEdges(8), 2)},
	}
	for i, m := range machines {
		sweepCircs = append(sweepCircs, struct {
			name string
			circ *circuit.Circuit
		}{"fig7-" + m.Name, sweepJobs[i*sweepReps].Circ})
	}
	for _, sc := range sweepCircs {
		unfused, fused1q, blocked, err := qsim.KernelCounts(sc.circ, nil)
		if err != nil {
			return nil, err
		}
		rep.KernelSweeps = append(rep.KernelSweeps, KernelSweepRow{
			Circuit: sc.name, Unfused: unfused, Fused1Q: fused1q, Blocked: blocked,
		})
		log.Printf("kernel sweeps %-24s unfused %4d  fused-1q %4d  blocked-2q %4d",
			sc.name, unfused, fused1q, blocked)
	}

	// CloudFleetSweep: the discrete-event cloud fleet over a two-month
	// window (full fleet, ~300 study jobs) through the batch wrapper
	// and through the session API — serial vs parallel fleet fan-out,
	// plus the online submission pattern (advance + snapshot + submit
	// per job) the live sched policies drive. The session rows measure
	// the event-driven core's overhead against batch Simulate.
	cloudStart := time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC)
	cloudEnd := cloudStart.AddDate(0, 2, 0)
	cloudSpecs := workload.Generate(workload.Config{Seed: 5, TotalJobs: 300, Start: cloudStart, End: cloudEnd})
	cloudOrdered := make([]*cloud.JobSpec, len(cloudSpecs))
	copy(cloudOrdered, cloudSpecs)
	sort.SliceStable(cloudOrdered, func(i, j int) bool {
		return cloudOrdered[i].SubmitTime.Before(cloudOrdered[j].SubmitTime)
	})
	cloudCfg := func(workers int) cloud.Config {
		return cloud.Config{Seed: 5, Start: cloudStart, End: cloudEnd, Workers: workers}
	}
	for _, mode := range []struct {
		name string
		f    func() error
	}{
		{"CloudFleetSweep/simulate-serial", func() error {
			_, err := cloud.Simulate(cloudCfg(1), cloudSpecs)
			return err
		}},
		{"CloudFleetSweep/simulate-parallel-4", func() error {
			_, err := cloud.Simulate(cloudCfg(4), cloudSpecs)
			return err
		}},
		{"CloudFleetSweep/session-batch", func() error {
			sess, err := cloud.Open(cloudCfg(1))
			if err != nil {
				return err
			}
			for _, s := range cloudSpecs {
				if _, err := sess.Submit(s); err != nil {
					return err
				}
			}
			_, err = sess.Run()
			return err
		}},
		{"CloudFleetSweep/session-online", func() error {
			sess, err := cloud.Open(cloudCfg(1))
			if err != nil {
				return err
			}
			for _, s := range cloudOrdered {
				sess.AdvanceTo(s.SubmitTime)
				if _, err := sess.QueueState(s.Machine); err != nil {
					return err
				}
				if _, err := sess.Submit(s); err != nil {
					return err
				}
			}
			_, err = sess.Run()
			return err
		}},
	} {
		if err := add(measure(mode.name, iters, mode.f)); err != nil {
			return nil, err
		}
	}

	// CloudFaultRecovery: the same fleet sweep under the adversarial
	// fault scenario with retries enabled — what outages, transient
	// failures and backoff requeues cost over the calm run — plus the
	// full checkpoint pipeline (snapshot mid-run, serialize, restore,
	// finish) against running straight through.
	advSc, err := workload.FindFaultScenario("adversarial")
	if err != nil {
		return nil, err
	}
	cloudMid := cloudStart.AddDate(0, 1, 0)
	for _, mode := range []struct {
		name string
		f    func() error
	}{
		{"CloudFaultRecovery/simulate-adversarial", func() error {
			_, err := cloud.Simulate(advSc.Apply(cloudCfg(1)), cloudSpecs)
			return err
		}},
		{"CloudFaultRecovery/checkpoint-roundtrip", func() error {
			cfg := advSc.Apply(cloudCfg(1))
			sess, err := cloud.Open(cfg)
			if err != nil {
				return err
			}
			for _, s := range cloudSpecs {
				if _, err := sess.SubmitRetried(s, 0); err != nil {
					return err
				}
			}
			sess.AdvanceTo(cloudMid)
			ck, err := sess.Checkpoint()
			if err != nil {
				return err
			}
			var buf bytes.Buffer
			if err := cloud.WriteCheckpoint(&buf, ck); err != nil {
				return err
			}
			decoded, err := cloud.ReadCheckpoint(&buf)
			if err != nil {
				return err
			}
			restored, err := cloud.Restore(cfg, decoded)
			if err != nil {
				return err
			}
			_, err = restored.Run()
			return err
		}},
	} {
		if err := add(measure(mode.name, iters, mode.f)); err != nil {
			return nil, err
		}
	}

	// CloudMultiTenant: the tenant brokering layer's cost over direct
	// submission. The same skewed-contention stream (8 tenants,
	// Zipf-weighted shares) runs three ways: specs pushed straight into
	// the session (no quotas, first-come order), through the fair-share
	// broker, and through the broker with preemption enabled. The
	// broker rows price the quota tree, the decayed ledger and the
	// per-tick admission pass.
	if tenantJobs > 0 {
		sc, err := workload.FindTenantScenario("skewed")
		if err != nil {
			return nil, err
		}
		tenantCfg := func() (tenant.Config, []tenant.Submission) {
			return sc.Build(workload.TenantConfig{
				Seed: 7, Start: cloudStart, End: cloudEnd, TotalJobs: tenantJobs,
			})
		}
		brokered := func(preempt bool) func() error {
			return func() error {
				tcfg, subs := tenantCfg()
				tcfg.Preemption = preempt
				b, err := tenant.Open(cloudCfg(4), tcfg)
				if err != nil {
					return err
				}
				if err := b.Play(subs); err != nil {
					return err
				}
				_, err = b.Run()
				return err
			}
		}
		for _, mode := range []struct {
			name string
			f    func() error
		}{
			{"CloudMultiTenant/direct", func() error {
				_, subs := tenantCfg()
				specs := make([]*cloud.JobSpec, len(subs))
				for i, sub := range subs {
					s := *sub.Spec
					s.User = "tenant:" + sub.Queue
					specs[i] = &s
				}
				_, err := cloud.Simulate(cloudCfg(4), specs)
				return err
			}},
			{"CloudMultiTenant/broker", brokered(false)},
			{"CloudMultiTenant/broker-preempt", brokered(true)},
		} {
			if err := add(measure(mode.name, iters, mode.f)); err != nil {
				return nil, err
			}
		}
	}

	// CloudJournaledSession: the ROADMAP's million-job constant-memory
	// contract. The same year-long study stream runs through an
	// in-memory session (the finished trace accumulates until Run) and
	// through a journaled one (every finished job streams to the
	// durable WAL, auto-checkpointed quarterly, trace discarded from
	// memory). Each row records throughput and the peak-RSS proxy —
	// live trace entries held at window end — which is O(jobs)
	// in-memory and must be 0 journaled no matter the job count.
	if journalJobs > 0 {
		jStart := backend.StudyStart
		jEnd := jStart.AddDate(1, 0, 0)
		jSpecs := workload.Generate(workload.Config{Seed: 11, TotalJobs: journalJobs, Start: jStart, End: jEnd})
		jCfg := cloud.Config{Seed: 11, Start: jStart, End: jEnd, Workers: 4}
		jRow := func(mode string, sec float64, held int, st *cloud.JournalStats) {
			row := JournalSessionRow{
				Mode: mode, Jobs: len(jSpecs), Seconds: sec,
				JobsPerSec:       float64(len(jSpecs)) / sec,
				HeldTraceEntries: held,
			}
			if st != nil {
				row.JournalRecords = st.Records
				row.JournalBytes = st.Bytes
				row.RecordsPerSec = float64(st.Records) / sec
				row.BytesPerJob = float64(st.Bytes) / float64(st.JobRecords)
				row.Checkpoints = st.Checkpoints
			}
			rep.JournalSessions = append(rep.JournalSessions, row)
			log.Printf("journal session %-10s %d jobs  %7.2fs  %8.0f jobs/s  held %d  bytes/job %.0f",
				mode, row.Jobs, sec, row.JobsPerSec, held, row.BytesPerJob)
		}
		var heldMem, heldJrnl int
		var jstats cloud.JournalStats
		resMem, err := measureOnce("CloudJournaledSession/in-memory", func() error {
			sess, err := cloud.Open(jCfg)
			if err != nil {
				return err
			}
			for _, s := range jSpecs {
				if _, err := sess.Submit(s); err != nil {
					return err
				}
			}
			sess.AdvanceTo(jEnd)
			heldMem = sess.HeldTraceEntries()
			_, err = sess.Run()
			return err
		})
		if err := add(resMem, err); err != nil {
			return nil, err
		}
		jRow("in-memory", resMem.NsPerOp/1e9, heldMem, nil)
		resJrnl, err := measureOnce("CloudJournaledSession/journaled", func() error {
			dir, err := os.MkdirTemp("", "qcloud-bench-journal-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			cfg := jCfg
			cfg.Journal = &cloud.JournalConfig{Dir: dir, CheckpointEvery: 91 * 24 * time.Hour}
			sess, err := cloud.Open(cfg)
			if err != nil {
				return err
			}
			for _, s := range jSpecs {
				if _, err := sess.Submit(s); err != nil {
					return err
				}
			}
			sess.AdvanceTo(jEnd)
			heldJrnl = sess.HeldTraceEntries()
			jstats, err = sess.DrainJournal()
			return err
		})
		if err := add(resJrnl, err); err != nil {
			return nil, err
		}
		jRow("journaled", resJrnl.NsPerOp/1e9, heldJrnl, &jstats)
	}

	// Kernel crossover probe: the same 16q exact evolution with the
	// parallel threshold forced low, default, and high — the knob
	// Parallelism.KernelMinAmps exposes.
	if maxWidth >= 16 {
		circ := gens.QFTBench(16)
		for _, minAmps := range []int{1 << 12, 1 << 14, 1 << 16} {
			minAmps := minAmps
			r := rand.New(rand.NewSource(3))
			name := fmt.Sprintf("KernelCrossover/16q/minamps-%d", minAmps)
			err := add(measure(name, iters, func() error {
				_, err := qsim.RunOpts(circ, 1, nil, r, qsim.Parallelism{Workers: 4, KernelMinAmps: minAmps})
				return err
			}))
			if err != nil {
				return nil, err
			}
		}
	}

	// Pair the variants into per-figure speedups.
	pairs := []struct{ figure, base, opt, against string }{
		{"TrajectoryShots", "TrajectoryShots/serial", "TrajectoryShots/parallel-4", "serial"},
		{"TrajectoryShots", "TrajectoryShots/serial-unfused", "TrajectoryShots/serial", "unfused"},
		{"TrajectoryShots", "TrajectoryShots/serial-no2q", "TrajectoryShots/serial", "no2q"},
		{"Fig07Fidelity", "Fig07Fidelity/serial", "Fig07Fidelity/parallel-4", "serial"},
		// The acceptance number for PR 3: the Fig 7 trajectory sweep,
		// batched + 2q-blocked, against the PR 2 dispatch at equal
		// worker count.
		{"BatchedSweep", "BatchedSweep/per-job-no2q", "BatchedSweep/batched", "pr2-per-job-no2q"},
		{"BatchedSweep", "BatchedSweep/per-job", "BatchedSweep/batched", "per-job-pools"},
		// Session-API overhead vs the batch entry point (≈1.0 means the
		// event-driven core costs nothing over the old fused loop).
		{"CloudFleetSweep", "CloudFleetSweep/simulate-serial", "CloudFleetSweep/simulate-parallel-4", "serial"},
		{"CloudFleetSweep/session-batch", "CloudFleetSweep/simulate-serial", "CloudFleetSweep/session-batch", "batch-simulate"},
		{"CloudFleetSweep/session-online", "CloudFleetSweep/simulate-serial", "CloudFleetSweep/session-online", "batch-simulate"},
		// Recovery overhead: fault injection + retries vs the calm run,
		// and the checkpoint round-trip vs running straight through.
		{"CloudFaultRecovery", "CloudFleetSweep/simulate-serial", "CloudFaultRecovery/simulate-adversarial", "no-faults"},
		{"CloudFaultRecovery/checkpoint", "CloudFaultRecovery/simulate-adversarial", "CloudFaultRecovery/checkpoint-roundtrip", "straight-run"},
		// Durability cost: what streaming every finished job to the WAL
		// (plus auto-checkpoints) costs over holding the trace in memory.
		{"CloudJournaledSession", "CloudJournaledSession/in-memory", "CloudJournaledSession/journaled", "in-memory"},
		// Brokering cost: the fair-share admission layer (and preemption
		// on top) against pushing the same stream straight in.
		{"CloudMultiTenant", "CloudMultiTenant/direct", "CloudMultiTenant/broker", "direct-submit"},
		{"CloudMultiTenant/preempt", "CloudMultiTenant/broker", "CloudMultiTenant/broker-preempt", "broker-no-preempt"},
	}
	for _, n := range []int{16, 20, 22} {
		if n > maxWidth {
			continue
		}
		fig := fmt.Sprintf("StatevectorScaling/%dq", n)
		pairs = append(pairs,
			struct{ figure, base, opt, against string }{fig, fig + "/serial", fig + "/parallel-4", "serial"},
			struct{ figure, base, opt, against string }{fig, fig + "/serial-unfused", fig + "/serial", "unfused"},
			struct{ figure, base, opt, against string }{fig, fig + "/serial-no2q", fig + "/serial", "no2q"},
		)
	}
	for _, p := range pairs {
		base, opt := rep.find(p.base), rep.find(p.opt)
		if base == nil || opt == nil || opt.NsPerOp == 0 {
			continue
		}
		rep.Speedups = append(rep.Speedups, Speedup{
			Figure:  p.figure,
			Against: p.against,
			BaseNs:  base.NsPerOp,
			NewNs:   opt.NsPerOp,
			Speedup: base.NsPerOp / opt.NsPerOp,
		})
	}
	return rep, nil
}

// markdown renders the report (vs its baseline when embedded) as the
// README perf table.
func markdown(rep *Report) string {
	out := "| Benchmark | ns/op | allocs/op |"
	if rep.Baseline != nil {
		out += " baseline ns/op | baseline allocs/op | vs baseline |"
	}
	out += "\n|---|---|---|"
	if rep.Baseline != nil {
		out += "---|---|---|"
	}
	out += "\n"
	for _, r := range rep.Results {
		out += fmt.Sprintf("| %s | %.0f | %d |", r.Name, r.NsPerOp, r.AllocsPerOp)
		if rep.Baseline != nil {
			if b := rep.Baseline.find(r.Name); b != nil && r.NsPerOp > 0 {
				out += fmt.Sprintf(" %.0f | %d | %.2fx |", b.NsPerOp, b.AllocsPerOp, b.NsPerOp/r.NsPerOp)
			} else {
				out += " — | — | — |"
			}
		}
		out += "\n"
	}
	return out
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("qcloud-bench: ")
	var (
		iters    = flag.Int("iters", 5, "iterations per benchmark (fixed, so CI timing is predictable)")
		maxWidth = flag.Int("maxwidth", 22, "largest statevector width to run (lower it for quick smoke runs)")
		shots    = flag.Int("shots", 256, "trajectory benchmark shot count")
		outPath  = flag.String("out", "", "output JSON path (default BENCH_<date>.json)")
		baseline = flag.String("baseline", "", "previous report to embed under \"baseline\" for comparison")
		label    = flag.String("label", "", "free-form label recorded in the report (e.g. a PR number)")
		notes    = flag.String("notes", "", "free-form notes recorded in the report (what the run establishes)")
		md       = flag.Bool("md", false, "also print the results as a markdown table")
		jrnlJobs = flag.Int("journal-jobs", 1000000, "job count for the journaled-session rows (single timed pass each; 0 skips them, lower it for quick smoke runs)")
		tenJobs  = flag.Int("tenant-jobs", 2000, "submission count for the multi-tenant broker rows (0 skips them)")
	)
	flag.Parse()

	rep, err := run(*iters, *maxWidth, *shots, *jrnlJobs, *tenJobs)
	if err != nil {
		log.Fatal(err)
	}
	rep.Label = *label
	// Stamp the host's parallelism into the notes so a committed report
	// can never be mistaken for a different machine class: parallel
	// speedup rows from a 1-vCPU container measure goroutine overhead,
	// not speedup.
	hw := fmt.Sprintf("hw: NumCPU=%d GOMAXPROCS=%d", runtime.NumCPU(), runtime.GOMAXPROCS(0))
	if *notes != "" {
		rep.Notes = *notes + " | " + hw
	} else {
		rep.Notes = hw
	}
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		var base Report
		if err := json.Unmarshal(data, &base); err != nil {
			log.Fatalf("parsing %s: %v", *baseline, err)
		}
		base.Baseline = nil // keep one level of history per file
		rep.Baseline = &base
	}

	path := *outPath
	if path == "" {
		path = "BENCH_" + rep.Date + ".json"
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", path)
	if *md {
		fmt.Println(markdown(rep))
	}
}
