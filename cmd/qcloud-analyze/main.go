// qcloud-analyze reproduces every figure of the paper from a trace:
// either one previously written by qcloud-sim (-trace trace.json) or a
// freshly generated one (-seed). Trace-driven figures (2-4, 8-16) read
// the trace; substrate-driven figures (5, 6, 7, 12b) run the compiler,
// topology analysis and noisy simulator directly.
//
// Usage:
//
//	qcloud-analyze -seed 42                 # generate and analyze
//	qcloud-analyze -trace trace.json       # analyze a stored trace
//	qcloud-analyze -seed 42 -fig 3,4,12a   # subset of figures
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"qcloud/internal/analysis"
	"qcloud/internal/backend"
	"qcloud/internal/circuit/gens"
	"qcloud/internal/cloud"
	"qcloud/internal/par"
	"qcloud/internal/predict"
	"qcloud/internal/stats"
	"qcloud/internal/trace"
	"qcloud/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qcloud-analyze: ")
	var (
		tracePath = flag.String("trace", "", "JSON trace from qcloud-sim (empty: generate with -seed)")
		seed      = flag.Int64("seed", 42, "seed for generated traces and experiments")
		jobs      = flag.Int("jobs", 6200, "study job count when generating")
		figs      = flag.String("fig", "all", "comma-separated figure ids (2a,2b,3,4,5,6,7,8,9,10,11,12a,12b,13,14,15,16) or 'all'")
		largeQFT  = flag.Int("fig5-large", 64, "large QFT size for Fig 5 (the paper uses 980; that run takes hours)")
		workers   = flag.Int("workers", 0, "worker pool size for simulation and the analysis sweeps (0 = NumCPU, 1 = serial; results are identical either way)")
	)
	flag.Parse()
	par.SetWorkers(*workers)

	tr, err := loadOrGenerate(*tracePath, *seed, *jobs)
	if err != nil {
		log.Fatal(err)
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	show := func(id string) bool { return all || want[id] }

	if show("2a") {
		fig2a(tr)
	}
	if show("2b") {
		fig2b(tr)
	}
	if show("3") {
		fig3(tr)
	}
	if show("4") {
		fig4(tr)
	}
	if show("5") {
		fig5(*seed, *largeQFT)
	}
	if show("6") {
		fig6()
	}
	if show("7") {
		fig7(*seed)
	}
	if show("8") {
		fig8(tr)
	}
	if show("9") {
		fig9(tr)
	}
	if show("10") {
		fig10(tr)
	}
	if show("11") {
		fig11(tr)
	}
	if show("12a") {
		fig12a(tr)
	}
	if show("12b") {
		fig12b(*seed)
	}
	if show("13") {
		fig13(tr)
	}
	if show("14") {
		fig14(tr)
	}
	if show("15") {
		fig15(tr, *seed)
	}
	if show("16") {
		fig16(tr, *seed)
	}
}

func loadOrGenerate(path string, seed int64, jobs int) (*trace.Trace, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadJSON(f)
	}
	specs := workload.Generate(workload.Config{Seed: seed, TotalJobs: jobs})
	return cloud.Simulate(cloud.Config{Seed: seed}, specs)
}

func header(id, title string) {
	fmt.Printf("\n== Fig %-3s %s\n", id, title)
}

func fig2a(tr *trace.Trace) {
	header("2a", "cumulative machine trials over the study (log-scale growth)")
	months := analysis.CumulativeTrials(tr)
	for _, m := range months {
		fmt.Printf("  %s  month=%-12d cumulative=%d\n", m.Month.Format("2006-01"), m.Trials, m.Cumulative)
	}
}

func fig2b(tr *trace.Trace) {
	header("2b", "execution status breakdown (paper: ~95% DONE)")
	b := analysis.StatusBreakdown(tr)
	for _, s := range []trace.Status{trace.StatusDone, trace.StatusError, trace.StatusCancelled} {
		fmt.Printf("  %-10s %5.1f%%\n", s, b[s]*100)
	}
}

func fig3(tr *trace.Trace) {
	header("3", "sorted per-circuit queuing times (paper: ~20% <1min, median ~60min, ~10% >=1day)")
	s := analysis.QueueShapeOf(tr)
	fmt.Printf("  circuits:       %d\n", s.TotalCircuits)
	fmt.Printf("  median:         %.1f min\n", s.MedianMinutes)
	fmt.Printf("  frac < 1 min:   %.1f%%\n", s.FracUnderMin*100)
	fmt.Printf("  frac > 2 h:     %.1f%%\n", s.FracOver2h*100)
	fmt.Printf("  frac >= 1 day:  %.1f%%\n", s.FracOverDay*100)
	qs := analysis.SortedCircuitQueuingTimes(tr)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		fmt.Printf("  p%-4.0f           %.2f min\n", q*100, stats.Quantile(qs, q))
	}
}

func fig4(tr *trace.Trace) {
	header("4", "queuing:execution ratio per job (paper: median ~10x, 25% >=100x)")
	ratios := analysis.QueueExecRatios(tr)
	fmt.Printf("  jobs:          %d\n", len(ratios))
	fmt.Printf("  median ratio:  %.1fx\n", stats.Median(ratios))
	fmt.Printf("  frac <= 1x:    %.1f%%\n", stats.FractionBelow(ratios, 1)*100)
	fmt.Printf("  frac >= 100x:  %.1f%%\n", stats.FractionAtLeast(ratios, 100)*100)
}

func fig5(seed int64, largeQFT int) {
	header("5", fmt.Sprintf("per-pass compile time: QFT(8)->melbourne vs QFT(%d)->fake1000 (paper: 100-1000x growth)", largeQFT))
	small := backend.FleetByName()["ibmq_16_melbourne"]
	costs, err := analysis.CompilePassProfile(8, small, largeQFT, nil, seed)
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(costs, func(i, j int) bool { return costs[i].LargeSec > costs[j].LargeSec })
	fmt.Printf("  %-34s %12s %12s %8s\n", "pass", "small (s)", "large (s)", "ratio")
	for _, c := range costs {
		fmt.Printf("  %-34s %12.6f %12.6f %8.1f\n", c.Pass, c.SmallSec, c.LargeSec, c.LargeSec/(c.SmallSec+1e-12))
	}
}

func fig6() {
	header("6", "qubits vs bisection bandwidth (paper: Manhattan 65q -> 3; 8x8 mesh would be 8)")
	rows := analysis.BisectionTable(backend.Fleet())
	for _, r := range rows {
		fmt.Printf("  %-22s qubits=%-3d bisection=%d\n", r.Machine, r.Qubits, r.BisectionBandwidth)
	}
}

func fig7(seed int64) {
	header("7", "4q QFT fidelity vs CX metrics across machines (paper: POS 62%..19%, tracks CX metrics)")
	byName := backend.FleetByName()
	var machines []*backend.Machine
	for _, n := range []string{"ibmq_casablanca", "ibmq_toronto", "ibmq_guadalupe", "ibmq_rome", "ibmq_manhattan"} {
		machines = append(machines, byName[n])
	}
	at := time.Date(2021, 3, 10, 12, 0, 0, 0, time.UTC)
	rows, err := analysis.FidelityVsCXMetrics(machines, 4, 800, at, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-18s %8s %9s %9s %12s %12s\n", "machine", "POS(%)", "CX-Depth", "CX-Total", "CX-D*Err(%)", "CX-T*Err(%)")
	for _, r := range rows {
		fmt.Printf("  %-18s %8.1f %9d %9d %12.1f %12.1f\n", r.Machine, r.POS, r.CXDepth, r.CXTotal, r.CXDepthErr, r.CXTotalErr)
	}
}

func fig8(tr *trace.Trace) {
	header("8", "machine utilization by circuits (paper: high on small machines, low on large)")
	util := analysis.UtilizationByMachine(tr)
	printViolins(util, "%")
}

func fig9(tr *trace.Trace) {
	header("9", "average pending jobs per machine, one week of March 2021 (paper: public >> private)")
	from := time.Date(2021, 3, 8, 0, 0, 0, 0, time.UTC)
	rows := analysis.PendingJobsByMachine(tr, from, from.AddDate(0, 0, 7))
	for _, r := range rows {
		tag := "private"
		if r.Public {
			tag = "PUBLIC"
		}
		fmt.Printf("  %-22s qubits=%-3d %-7s avgPending=%.1f\n", r.Machine, r.Qubits, tag, r.AvgPending)
	}
}

func fig10(tr *trace.Trace) {
	header("10", "queuing time distribution vs machine, minutes (paper: public means are hours)")
	printViolins(analysis.QueuingByMachine(tr), "min")
}

func fig11(tr *trace.Trace) {
	header("11", "queuing time vs batch size (paper: per-job grows, per-circuit falls)")
	buckets := analysis.ByBatchSize(tr, nil)
	fmt.Printf("  %-12s %6s %14s %18s\n", "batch", "jobs", "perJob med(min)", "perCircuit med(min)")
	for _, b := range buckets {
		if b.N == 0 {
			continue
		}
		fmt.Printf("  [%3d,%3d)    %6d %14.1f %18.3f\n", b.Lo, b.Hi, b.N, b.PerJobQueueMin.Med, b.PerCircuitQueueMedianMin)
	}
}

func fig12a(tr *trace.Trace) {
	header("12a", "calibration crossovers (paper: 21.9% of jobs)")
	fmt.Printf("  crossover: %.1f%% of %d jobs\n", analysis.CalibrationCrossovers(tr)*100, len(tr.Jobs))
}

func fig12b(seed int64) {
	header("12b", "noise-aware layout churn across calibration cycles (paper: mappings change)")
	m := backend.FleetByName()["ibmq_toronto"]
	t0 := time.Date(2021, 2, 1, 12, 0, 0, 0, time.UTC)
	div, err := analysis.LayoutDivergenceOf(gens.QFT(4), m, t0, 14, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  layout changed across %.0f%% of consecutive calibration cycles on %s\n", div.ChangedFraction*100, m.Name)
	for d, layout := range div.Layouts {
		if d > 4 {
			fmt.Printf("  ... (%d more days)\n", len(div.Layouts)-d)
			break
		}
		fmt.Printf("  day %d: logical->physical %v\n", d, layout)
	}
}

func fig13(tr *trace.Trace) {
	header("13", "run time per circuit vs machine, minutes (paper: larger machines slower)")
	printViolins(analysis.RuntimeByMachine(tr), "min")
}

func fig14(tr *trace.Trace) {
	header("14", "run time vs batch size (paper: proportional)")
	trend := analysis.RuntimeVsBatch(tr)
	fmt.Printf("  trend: runtime(min) = %.3f + %.4f * batch  (r=%.3f over %d jobs)\n",
		trend.InterceptMin, trend.SlopeMinPerCircuit, trend.Correlation, trend.N)
}

func fig15(tr *trace.Trace, seed int64) {
	header("15", "predicted vs actual runtime correlation per machine (paper: >=0.95 on all but two)")
	preds := analysis.PredictionCorrelations(tr, 80, seed)
	sets := predict.CumulativeSets()
	fmt.Printf("  %-22s", "machine")
	for _, set := range sets {
		fmt.Printf(" %9s", set[len(set)-1])
	}
	fmt.Println()
	for _, p := range preds {
		fmt.Printf("  %-22s", p.Machine)
		for _, c := range p.Correlations {
			fmt.Printf(" %9.3f", c)
		}
		fmt.Println()
	}
}

func fig16(tr *trace.Trace, seed int64) {
	header("16", "actual vs predicted runtime series (paper: Manhattan high corr, Vigo poorer)")
	byMachine := tr.JobsByMachine()
	names := make([]string, 0, len(byMachine))
	for n := range byMachine {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return len(byMachine[names[i]]) > len(byMachine[names[j]]) })
	shown := 0
	for _, name := range names {
		actual, predicted, err := analysis.PredictionSeries(tr, name, seed)
		if err != nil {
			continue
		}
		fmt.Printf("  %-22s test jobs=%-4d corr=%.3f  (first 5: actual %s / predicted %s)\n",
			name, len(actual), stats.Pearson(actual, predicted),
			fmtSeries(actual, 5), fmtSeries(predicted, 5))
		shown++
		if shown == 4 {
			break
		}
	}
}

func fmtSeries(xs []float64, n int) string {
	if len(xs) > n {
		xs = xs[:n]
	}
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%.0fs", x)
	}
	return strings.Join(parts, ",")
}

func printViolins(v map[string]stats.ViolinSummary, unit string) {
	names := make([]string, 0, len(v))
	for n := range v {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("  %-22s %5s %8s %8s %8s %8s %8s\n", "machine", "n", "p5", "q1", "med", "q3", "p95")
	for _, n := range names {
		s := v[n]
		fmt.Printf("  %-22s %5d %8.2f %8.2f %8.2f %8.2f %8.2f  %s\n", n, s.N, s.P5, s.Q1, s.Med, s.Q3, s.P95, unit)
	}
}
