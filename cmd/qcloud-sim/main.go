// qcloud-sim generates the two-year synthetic study trace: the
// workload model produces the study's job stream, an event-driven
// cloud session queues and executes it against the background load,
// and the result is written as CSV (jobs) and/or JSON (jobs + machine
// queue samples). With -events the session's lifecycle stream is
// tallied live as the fleet advances.
//
// Fault injection is opt-in via -faults (a workload.FaultScenarios
// preset); -checkpoint snapshots the faulted run mid-window and
// -restore resumes from such a snapshot, reproducing the uninterrupted
// trace byte for byte as long as the other flags match the original
// run.
//
// -journal streams the run into a durable journal directory (crash-safe
// WAL + periodic auto-checkpoints) instead of holding the trace in
// memory; a run killed at any point — SIGKILL included — resumes with
// -recover and finishes with output byte-identical to an uninterrupted
// run.
//
// Usage:
//
//	qcloud-sim -seed 42 -jobs 6200 -workers 8 -csv trace.csv -json trace.json
//	qcloud-sim -seed 42 -events
//	qcloud-sim -seed 42 -faults adversarial -checkpoint snap.qcsn -checkpoint-days 365
//	qcloud-sim -seed 42 -faults adversarial -restore snap.qcsn -csv trace.csv
//	qcloud-sim -seed 42 -journal run.journal -csv trace.csv
//	qcloud-sim -seed 42 -journal run.journal -recover -csv trace.csv
//
// -tenants runs a multi-tenant brokered session instead: a
// workload.TenantScenarios preset builds a quota tree plus a
// contention stream, a tenant.Broker admits jobs by time-decayed
// fair share, and the per-queue fairness table is printed after the
// run.
//
//	qcloud-sim -seed 42 -tenants skewed -days 21
//	qcloud-sim -seed 42 -tenants priority-inversion -preempt off
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/cloud"
	"qcloud/internal/par"
	"qcloud/internal/tenant"
	"qcloud/internal/trace"
	"qcloud/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qcloud-sim: ")
	var (
		seed     = flag.Int64("seed", 42, "random seed; the same seed reproduces the trace byte for byte")
		jobs     = flag.Int("jobs", 6200, "expected study job count")
		workers  = flag.Int("workers", 0, "worker pool size for the fleet sweep (0 = NumCPU, 1 = serial; output is identical either way)")
		csvPath  = flag.String("csv", "", "write job records as CSV to this path")
		jsPath   = flag.String("json", "", "write the full trace (jobs + machine stats) as JSON to this path")
		events   = flag.Bool("events", false, "subscribe to the session event stream and print per-kind totals")
		faults   = flag.String("faults", "", "fault-injection scenario preset (see -faults list)")
		ckptPath = flag.String("checkpoint", "", "write a mid-run session checkpoint to this path")
		ckptDays = flag.Float64("checkpoint-days", 365, "days into the window at which -checkpoint snapshots")
		restore  = flag.String("restore", "", "resume from a checkpoint file instead of starting fresh (seed/jobs/faults must match the original run)")
		journal  = flag.String("journal", "", "durable journal directory: stream job records to disk with auto-checkpoints instead of holding the trace in memory")
		recov    = flag.Bool("recover", false, "resume a killed -journal run from its journal directory and finish it")
		jrnlDays = flag.Float64("journal-ckpt-days", 30, "auto-checkpoint cadence for -journal, in simulated days")
		days     = flag.Float64("days", 0, "length of the simulated window in days (0 = the full two-year study window)")
		tenants  = flag.String("tenants", "", "multi-tenant scenario preset: run a brokered session and print the fairness table (see -tenants list)")
		tcount   = flag.Int("tenant-count", 0, "tenant queue count for -tenants (0 = scenario default)")
		preempt  = flag.String("preempt", "scenario", "broker preemption for -tenants: scenario, on, or off")
		quiet    = flag.Bool("q", false, "suppress the summary")
	)
	flag.Parse()
	par.SetWorkers(*workers)

	start, end := backend.StudyStart, backend.StudyEnd
	if *days > 0 {
		end = start.Add(time.Duration(*days * 24 * float64(time.Hour)))
	}
	cfg := cloud.Config{Seed: *seed, Workers: *workers, Start: start, End: end}
	if *journal != "" {
		cfg.Journal = &cloud.JournalConfig{
			Dir:             *journal,
			CheckpointEvery: time.Duration(*jrnlDays * 24 * float64(time.Hour)),
		}
	} else if *recov {
		log.Fatal("-recover requires -journal")
	}
	if *faults != "" {
		sc, err := workload.FindFaultScenario(*faults)
		if err != nil {
			var names []string
			for _, s := range workload.FaultScenarios() {
				names = append(names, s.Name)
			}
			log.Fatalf("%v (available: %s)", err, strings.Join(names, ", "))
		}
		cfg = sc.Apply(cfg)
	}
	if *tenants != "" {
		if *journal != "" || *recov || *restore != "" || *ckptPath != "" {
			log.Fatal("-tenants cannot combine with -journal/-recover/-restore/-checkpoint")
		}
		runTenants(cfg, *tenants, *tcount, *jobs, *preempt, *events, *csvPath, *jsPath, *quiet)
		return
	}
	var sess *cloud.Session
	var err error
	if *restore != "" {
		f, err := os.Open(*restore)
		if err != nil {
			log.Fatal(err)
		}
		ck, err := cloud.ReadCheckpoint(f)
		if err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		sess, err = cloud.Restore(cfg, ck)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("restored session from %s", *restore)
	} else if *recov {
		if sess, err = cloud.Recover(cfg); err != nil {
			log.Fatal(err)
		}
		log.Printf("recovered session from %s (%d accepted submissions replayed)", *journal, sess.JournaledSubmits())
	} else if sess, err = cloud.Open(cfg); err != nil {
		log.Fatal(err)
	}
	// Event totals are tallied from the observation stream while the
	// fleet advances; the channel closes once the session ends.
	tallied := make(chan map[cloud.EventKind]int64, 1)
	if *events {
		stream, err := sess.Observe(cloud.EventFilter{})
		if err != nil {
			log.Fatal(err)
		}
		go func() {
			counts := make(map[cloud.EventKind]int64)
			for ev := range stream {
				counts[ev.Kind]++
			}
			tallied <- counts
		}()
	}
	if *restore == "" {
		// A restored session already carries its submitted workload; a
		// fresh one gets the generated study stream (SubmitRetried rides
		// out the fault injector's transient submission rejections). A
		// recovered journal session replays its accepted submissions from
		// the input log, so only the unsubmitted suffix of the (fully
		// deterministic) stream is submitted again.
		specs := workload.Generate(workload.Config{Seed: *seed, TotalJobs: *jobs, Start: start, End: end})
		skip := 0
		if *recov {
			skip = int(sess.JournaledSubmits())
			if skip > len(specs) {
				skip = len(specs)
			}
		}
		for _, s := range specs[skip:] {
			if _, err := sess.SubmitRetried(s, 0); err != nil {
				log.Fatal(err)
			}
		}
	}
	if *ckptPath != "" {
		at := backend.StudyStart.Add(time.Duration(*ckptDays * 24 * float64(time.Hour)))
		sess.AdvanceTo(at)
		ck, err := sess.Checkpoint()
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*ckptPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := cloud.WriteCheckpoint(f, ck); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("checkpoint at %s written to %s", at.Format(time.RFC3339), *ckptPath)
	}
	tr, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}

	writeOutputs(tr, *csvPath, *jsPath)
	if *events {
		printEventTally(<-tallied)
	}
	if *quiet {
		return
	}
	printSummary(tr, *csvPath, *jsPath)
}

func writeOutputs(tr *trace.Trace, csvPath, jsPath string) {
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteCSV(f, tr.Jobs); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if jsPath != "" {
		f, err := os.Create(jsPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteJSON(f, tr); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
}

func printEventTally(counts map[cloud.EventKind]int64) {
	fmt.Println("session events (study + background):")
	for _, k := range []cloud.EventKind{
		cloud.EventEnqueue, cloud.EventStart, cloud.EventDone, cloud.EventError,
		cloud.EventCancel, cloud.EventDowntime, cloud.EventPendingSample,
		cloud.EventMachineDown, cloud.EventMachineUp, cloud.EventRetry, cloud.EventRequeue,
	} {
		fmt.Printf("  %-15s %d\n", k, counts[k])
	}
}

func printSummary(tr *trace.Trace, csvPath, jsPath string) {
	var circuits, trials int64
	statuses := map[trace.Status]int{}
	for _, j := range tr.Jobs {
		circuits += int64(j.BatchSize)
		trials += j.Trials()
		statuses[j.Status]++
	}
	fmt.Printf("jobs:     %d\n", len(tr.Jobs))
	fmt.Printf("circuits: %d\n", circuits)
	fmt.Printf("trials:   %d\n", trials)
	fmt.Printf("statuses: DONE=%d ERROR=%d CANCELLED=%d\n",
		statuses[trace.StatusDone], statuses[trace.StatusError], statuses[trace.StatusCancelled])
	if csvPath == "" && jsPath == "" {
		fmt.Println("(no -csv/-json output requested; summary only)")
	}
}

// runTenants is the -tenants mode: build the scenario's quota tree and
// contention stream, drive it through a tenant.Broker over the session
// and print the per-queue fairness table plus run-level metrics.
func runTenants(cfg cloud.Config, scenario string, tenantCount, jobs int, preempt string, events bool, csvPath, jsPath string, quiet bool) {
	sc, err := workload.FindTenantScenario(scenario)
	if err != nil {
		var names []string
		for _, s := range workload.TenantScenarios() {
			names = append(names, s.Name)
		}
		log.Fatalf("%v (available: %s)", err, strings.Join(names, ", "))
	}
	tcfg, subs := sc.Build(workload.TenantConfig{
		Seed: cfg.Seed, Start: cfg.Start, End: cfg.End,
		Tenants: tenantCount, TotalJobs: jobs,
	})
	switch preempt {
	case "scenario":
	case "on":
		tcfg.Preemption = true
	case "off":
		tcfg.Preemption = false
	default:
		log.Fatalf("-preempt must be scenario, on or off (got %q)", preempt)
	}
	b, err := tenant.Open(cfg, tcfg)
	if err != nil {
		log.Fatal(err)
	}
	tallied := make(chan map[cloud.EventKind]int64, 1)
	if events {
		stream, err := b.Session().Observe(cloud.EventFilter{})
		if err != nil {
			log.Fatal(err)
		}
		go func() {
			counts := make(map[cloud.EventKind]int64)
			for ev := range stream {
				counts[ev.Kind]++
			}
			tallied <- counts
		}()
	}
	if err := b.Play(subs); err != nil {
		log.Fatal(err)
	}
	tr, err := b.Run()
	if err != nil {
		log.Fatal(err)
	}
	writeOutputs(tr, csvPath, jsPath)
	if events {
		printEventTally(<-tallied)
	}
	if quiet {
		return
	}
	fmt.Printf("tenant scenario %q: %d submissions, preemption=%v\n", sc.Name, len(subs), tcfg.Preemption)
	if err := b.DumpStates(os.Stdout); err != nil {
		log.Fatal(err)
	}
	m := b.Metrics()
	fmt.Printf("fair-share: jain=%.4f maxdev=%.4f qpu-seconds=%.0f preemptions=%d\n",
		m.JainIndex, m.MaxDeviation, m.TotalQPUSeconds, m.Preemptions)
	printSummary(tr, csvPath, jsPath)
}
