// qcloud-sim generates the two-year synthetic study trace: the
// workload model produces the study's job stream, an event-driven
// cloud session queues and executes it against the background load,
// and the result is written as CSV (jobs) and/or JSON (jobs + machine
// queue samples). With -events the session's lifecycle stream is
// tallied live as the fleet advances.
//
// Usage:
//
//	qcloud-sim -seed 42 -jobs 6200 -workers 8 -csv trace.csv -json trace.json
//	qcloud-sim -seed 42 -events
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"qcloud/internal/cloud"
	"qcloud/internal/par"
	"qcloud/internal/trace"
	"qcloud/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qcloud-sim: ")
	var (
		seed    = flag.Int64("seed", 42, "random seed; the same seed reproduces the trace byte for byte")
		jobs    = flag.Int("jobs", 6200, "expected study job count")
		workers = flag.Int("workers", 0, "worker pool size for the fleet sweep (0 = NumCPU, 1 = serial; output is identical either way)")
		csvPath = flag.String("csv", "", "write job records as CSV to this path")
		jsPath  = flag.String("json", "", "write the full trace (jobs + machine stats) as JSON to this path")
		events  = flag.Bool("events", false, "subscribe to the session event stream and print per-kind totals")
		quiet   = flag.Bool("q", false, "suppress the summary")
	)
	flag.Parse()
	par.SetWorkers(*workers)

	specs := workload.Generate(workload.Config{Seed: *seed, TotalJobs: *jobs})
	sess, err := cloud.Open(cloud.Config{Seed: *seed, Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}
	// Event totals are tallied from the observation stream while the
	// fleet advances; the channel closes once the session ends.
	tallied := make(chan map[cloud.EventKind]int64, 1)
	if *events {
		stream := sess.Observe(cloud.EventFilter{})
		go func() {
			counts := make(map[cloud.EventKind]int64)
			for ev := range stream {
				counts[ev.Kind]++
			}
			tallied <- counts
		}()
	}
	for _, s := range specs {
		if _, err := sess.Submit(s); err != nil {
			log.Fatal(err)
		}
	}
	tr, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteCSV(f, tr.Jobs); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if *jsPath != "" {
		f, err := os.Create(*jsPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteJSON(f, tr); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if *events {
		counts := <-tallied
		fmt.Println("session events (study + background):")
		for _, k := range []cloud.EventKind{
			cloud.EventEnqueue, cloud.EventStart, cloud.EventDone, cloud.EventError,
			cloud.EventCancel, cloud.EventDowntime, cloud.EventPendingSample,
		} {
			fmt.Printf("  %-15s %d\n", k, counts[k])
		}
	}
	if *quiet {
		return
	}
	var circuits, trials int64
	statuses := map[trace.Status]int{}
	for _, j := range tr.Jobs {
		circuits += int64(j.BatchSize)
		trials += j.Trials()
		statuses[j.Status]++
	}
	fmt.Printf("jobs:     %d\n", len(tr.Jobs))
	fmt.Printf("circuits: %d\n", circuits)
	fmt.Printf("trials:   %d\n", trials)
	fmt.Printf("statuses: DONE=%d ERROR=%d CANCELLED=%d\n",
		statuses[trace.StatusDone], statuses[trace.StatusError], statuses[trace.StatusCancelled])
	if *csvPath == "" && *jsPath == "" {
		fmt.Println("(no -csv/-json output requested; summary only)")
	}
}
