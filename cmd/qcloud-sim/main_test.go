package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

func buildSim(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "qcloud-sim")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func mustRun(t *testing.T, bin string, args ...string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	}
}

// TestJournalSIGKILLRecovery is the tentpole's end-to-end harness: a
// real qcloud-sim process is SIGKILLed mid-run at several wall-clock
// offsets — no cleanup, no flushing, exactly like a crash or OOM kill
// — and -recover must finish each run with CSV output byte-identical
// to an uninterrupted one. Offsets that outlive the run exercise
// recovery over a sealed journal, which must also reproduce the bytes.
func TestJournalSIGKILLRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash harness")
	}
	bin := buildSim(t)
	work := t.TempDir()
	golden := filepath.Join(work, "golden.csv")
	base := []string{"-seed", "9", "-days", "365", "-jobs", "800", "-q"}
	mustRun(t, bin, append(base, "-csv", golden)...)
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	for i, delay := range []time.Duration{150 * time.Millisecond, 600 * time.Millisecond, 1300 * time.Millisecond} {
		dir := filepath.Join(work, fmt.Sprintf("journal-%d", i))
		out := filepath.Join(work, fmt.Sprintf("out-%d.csv", i))
		jargs := append(append([]string{}, base...), "-journal", dir, "-journal-ckpt-days", "45", "-csv", out)
		cmd := exec.Command(bin, jargs...)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		timer := time.AfterFunc(delay, func() { cmd.Process.Kill() })
		runErr := cmd.Wait()
		timer.Stop()
		rargs := append(append([]string{}, jargs...), "-recover")
		rec := exec.Command(bin, rargs...)
		if recOut, err := rec.CombinedOutput(); err != nil {
			t.Fatalf("kill at %v (run err %v): recover failed: %v\n%s", delay, runErr, err, recOut)
		}
		got, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("kill at %v (run err %v): recovered CSV differs from uninterrupted run (%d vs %d bytes)",
				delay, runErr, len(got), len(want))
		}
	}
}
