// qcloud-recs evaluates the paper's actionable recommendations on the
// simulated cloud: vendor-side scheduling (§IV-D.2), queue-time
// prediction with confidence bounds (§V-E.1), re-compilation on
// calibration change (§V-E.2), multi-programming (§IV-D.3), readout
// mitigation, and verification assertions (recommendation 1).
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"qcloud/internal/analysis"
	"qcloud/internal/backend"
	"qcloud/internal/circuit/gens"
	"qcloud/internal/cloud"
	"qcloud/internal/compile"
	"qcloud/internal/par"
	"qcloud/internal/pulse"
	"qcloud/internal/qsim"
	"qcloud/internal/sched"
	"qcloud/internal/verify"
	"qcloud/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qcloud-recs: ")
	seed := flag.Int64("seed", 11, "experiment seed")
	workers := flag.Int("workers", 0, "worker pool size (0 = NumCPU, 1 = serial; results are identical either way)")
	flag.Parse()
	par.SetWorkers(*workers)

	scheduling(*seed)
	waitBounds(*seed)
	staleness(*seed)
	multiprogramming(*seed)
	mitigation(*seed)
	verification(*seed)
}

func section(title string) { fmt.Printf("\n== %s\n", title) }

func scheduling(seed int64) {
	section("Vendor-side placement (§IV-D.2) — 3-month replay per policy")
	cfg := cloud.Config{
		Seed:  seed,
		Start: time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC),
	}
	est, err := sched.BuildEstimator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	specs := workload.Generate(workload.Config{
		Seed: seed, TotalJobs: 900, Start: cfg.Start, End: cfg.End, GrowthPerMonth: 0.05,
	})
	fmt.Printf("  %-16s %12s %12s %10s\n", "policy", "medQ (min)", "meanQ (min)", "estFid")
	for _, p := range []sched.Policy{
		sched.UserChoice{}, sched.LeastPending{}, sched.PredictedWait{},
		sched.FidelityAware{WaitPenaltyPerHour: 0.01},
	} {
		sum, _, err := sched.Evaluate(cfg, specs, p, est)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s %12.1f %12.1f %9.1f%%\n",
			sum.Policy, sum.MedianQueueMin, sum.MeanQueueMin, sum.MeanEstFidelity*100)
	}
}

func waitBounds(seed int64) {
	section("Queue-time prediction with confidence bounds (§V-E.1)")
	cfg := cloud.Config{
		Seed:  seed + 1,
		Start: time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC),
	}
	est, err := sched.BuildEstimator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	at := time.Date(2021, 3, 15, 16, 0, 0, 0, time.UTC)
	for _, m := range []string{"ibmq_athens", "ibmq_santiago", "ibmq_toronto", "ibmq_rome"} {
		b := est.EstimatedWaitBounds(m, at)
		fmt.Printf("  %-18s pending=%-5d wait p10=%.0fm p50=%.0fm p90=%.0fm\n",
			m, est.PendingAt(m, at), b.P10/60, b.P50/60, b.P90/60)
	}
}

func staleness(seed int64) {
	section("Re-compilation payoff (§V-E.2, Fig 12) — fresh vs 3-day-stale")
	m := backend.FleetByName()["ibmq_toronto"]
	t0 := time.Date(2021, 3, 1, 15, 0, 0, 0, time.UTC)
	res, err := analysis.StaleCompilationPenalty(m, 4, 3, 10, 600, t0, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  4q QFT on %s over %d days: fresh POS %.1f%%, stale POS %.1f%% (gap %.1f points)\n",
		m.Name, res.Days, res.FreshPOS*100, res.StalePOS*100, (res.FreshPOS-res.StalePOS)*100)
	// Pulse-level staleness: schedule drift across a calibration.
	cal0 := m.CalibrationAt(t0)
	cal3 := m.CalibrationAt(t0.Add(72 * time.Hour))
	cres, err := compile.Compile(gens.QFTBench(4), m, cal0, compile.Options{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	pen, err := pulse.StaleDurationPenalty(cres.Circ, cal0, cal3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  pulse-level: re-lowering under the new calibration moves the schedule makespan by %+.1f%%\n", pen*100)
}

func multiprogramming(seed int64) {
	section("Multi-programming (§IV-D.3) — co-compiling two programs")
	m := backend.FleetByName()["ibmq_16_melbourne"]
	cal := m.CalibrationAt(time.Date(2021, 3, 1, 12, 0, 0, 0, time.UTC))
	res, err := compile.MultiProgram(gens.GHZ(4), gens.QFTBench(4), m, cal, compile.Options{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	single := float64(len(res.ResultA.Circ.UsedQubits())) / float64(m.NumQubits())
	fmt.Printf("  %s: single-program utilization %.0f%% -> multi-program %.0f%% (one queue slot, two results)\n",
		m.Name, single*100, res.Utilization*100)
}

func mitigation(seed int64) {
	section("Readout-error mitigation — recovering POS after measurement noise")
	m := backend.FleetByName()["ibmq_rome"]
	cal := m.CalibrationAt(time.Date(2021, 3, 10, 12, 0, 0, 0, time.UTC))
	res, err := compile.Compile(gens.QFTBench(3), m, cal, compile.Options{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	compacted, origOf := qsim.Compact(res.Circ)
	noise := qsim.NoiseFromCalibration(cal, 0).Remap(origOf)
	counts, err := qsim.Run(compacted, 20000, noise, rand.New(rand.NewSource(seed)))
	if err != nil {
		log.Fatal(err)
	}
	clbitQubit := make([]int, compacted.NClbits)
	for _, g := range res.Circ.Gates {
		if g.Op.String() == "measure" {
			clbitQubit[g.Clbit] = g.Qubits[0]
		}
	}
	mit, err := qsim.MitigatorFromCalibration(cal, clbitQubit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  3q QFT bench on %s: raw POS %.1f%% -> mitigated %.1f%%\n",
		m.Name, counts.Prob("000")*100, mit.MitigatedProb(counts, "000")*100)
}

func verification(seed int64) {
	section("Statistical assertions (recommendation 1) — catching a buggy circuit")
	r := rand.New(rand.NewSource(seed))
	good, err := qsim.Run(gens.GHZ(4), 4000, nil, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  GHZ(4) correct:  %s\n", verify.AssertEqualBits(good, 4, 0.01, 0.01))
	// "Bug": a missing CX turns GHZ into a product state on one qubit.
	buggy := gens.GHZ(4)
	buggy.Gates = append(buggy.Gates[:2], buggy.Gates[3:]...) // drop one CX
	bad, err := qsim.Run(buggy, 4000, nil, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  GHZ(4) with a dropped CX:  %s\n", verify.AssertEqualBits(bad, 4, 0.01, 0.01))
}
