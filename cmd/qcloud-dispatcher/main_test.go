package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"qcloud/internal/dispatch"
	"qcloud/internal/dispatch/wire"
	"qcloud/internal/qsim"
)

// buildTool compiles one of the repo's commands into dir.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "qcloud/cmd/"+name)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

// freePort reserves a listen address the dispatcher can reuse across a
// kill + restart (the workers' -server URL must stay valid).
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// syncBuffer guards the capture buffer: exec starts one copier
// goroutine per stream (stdout, stderr) and the test reads while the
// daemon is still writing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// daemon wraps a started subprocess with captured output.
type daemon struct {
	cmd *exec.Cmd
	out *syncBuffer
}

// startDaemon launches bin and waits for readyLine (if non-empty) on
// its stdout/stderr.
func startDaemon(t *testing.T, readyLine string, bin string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var buf syncBuffer
	pr, pw := io.Pipe()
	cmd.Stdout = io.MultiWriter(&buf, pw)
	cmd.Stderr = io.MultiWriter(&buf, pw)
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	d := &daemon{cmd: cmd, out: &buf}
	if readyLine == "" {
		go io.Copy(io.Discard, pr)
		return d
	}
	ready := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(pr)
		for sc.Scan() {
			if strings.Contains(sc.Text(), readyLine) {
				close(ready)
				break
			}
		}
		io.Copy(io.Discard, pr)
	}()
	select {
	case <-ready:
	case <-time.After(30 * time.Second):
		t.Fatalf("%s did not print %q\n%s", bin, readyLine, buf.String())
	}
	return d
}

// signalAndWait delivers sig and waits for exit, failing on a non-zero
// status.
func signalAndWait(t *testing.T, d *daemon, sig syscall.Signal, within time.Duration) {
	t.Helper()
	if err := d.cmd.Process.Signal(sig); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("exit after %v: %v\n%s", sig, err, d.out.String())
		}
	case <-time.After(within):
		d.cmd.Process.Kill()
		t.Fatalf("no exit within %v of %v\n%s", within, sig, d.out.String())
	}
}

// waitStatus polls the dispatcher until cond holds.
func waitStatus(t *testing.T, cl *dispatch.Client, within time.Duration, desc string, cond func(wire.StatusResponse) bool) wire.StatusResponse {
	t.Helper()
	deadline := time.Now().Add(within)
	var last wire.StatusResponse
	for time.Now().Before(deadline) {
		st, err := cl.Status()
		if err == nil {
			last = st
			if cond(st) {
				return st
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; last status %+v", desc, last)
	return last
}

// slowSpec is a unit big enough (~1-2s serial) to reliably catch a
// worker mid-batch.
func slowSpec() wire.Spec {
	return wire.Spec{
		SubmitTime: time.Date(2019, 1, 2, 0, 0, 0, 0, time.UTC),
		User:       "u0",
		Machine:    "ibmq_16_melbourne",
		BatchSize:  1, Shots: 64, CircuitName: "qft21", Width: 21,
		ExecKind: "qft", ExecWidth: 21, ExecBatch: 6, ExecShots: 64, ExecSeed: 5,
	}
}

// slowGoldenCounts is the in-process reference for slowSpec.
func slowGoldenCounts(t *testing.T) []byte {
	t.Helper()
	rs, err := wire.RunLocal([]wire.Spec{slowSpec()}, qsim.Parallelism{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDaemonsSIGKILLDispatcherRecovery is the tentpole acceptance pin
// at full distance: real dispatcher, two real workers, and a real load
// client; the dispatcher is SIGKILLed mid-run — while submissions and
// results are landing — and restarted on the same state directory. The
// load client blindly retries through the outage on its idempotency
// keys, and both merged CSVs come out byte-identical to the in-process
// references.
func TestDaemonsSIGKILLDispatcherRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash harness")
	}
	bins := t.TempDir()
	dispatcherBin := buildTool(t, bins, "qcloud-dispatcher")
	workerBin := buildTool(t, bins, "qcloud-worker")
	loadBin := buildTool(t, bins, "qcloud-load")

	work := t.TempDir()
	goldenTrace := filepath.Join(work, "golden-trace.csv")
	goldenCounts := filepath.Join(work, "golden-counts.csv")
	loadArgs := []string{"-seed", "9", "-jobs", "300", "-days", "60", "-q"}
	if out, err := exec.Command(loadBin, append(append([]string{}, loadArgs...),
		"-local", "-trace-csv", goldenTrace, "-counts-csv", goldenCounts)...).CombinedOutput(); err != nil {
		t.Fatalf("golden run: %v\n%s", err, out)
	}
	wantTrace, err := os.ReadFile(goldenTrace)
	if err != nil {
		t.Fatal(err)
	}
	wantCounts, err := os.ReadFile(goldenCounts)
	if err != nil {
		t.Fatal(err)
	}

	addr := freePort(t)
	state := filepath.Join(work, "state")
	dispArgs := []string{"-listen", addr, "-state", state, "-seed", "9", "-days", "60", "-ckpt-every", "8"}
	disp := startDaemon(t, "listening on", dispatcherBin, dispArgs...)

	server := "http://" + addr
	for i := 0; i < 2; i++ {
		startDaemon(t, "", workerBin, "-server", server, "-name", fmt.Sprintf("w%d", i), "-poll", "20ms", "-q")
	}

	gotTrace := filepath.Join(work, "trace.csv")
	gotCounts := filepath.Join(work, "counts.csv")
	load := startDaemon(t, "", loadBin, append(append([]string{}, loadArgs...),
		"-server", server, "-wait", "-retry-for", "120s", "-poll", "20ms",
		"-trace-csv", gotTrace, "-counts-csv", gotCounts)...)

	// Let the run get properly underway — submissions accepted,
	// results merged — then kill the dispatcher without ceremony.
	cl := &dispatch.Client{Server: server, Timeout: 2 * time.Second}
	waitStatus(t, cl, time.Minute, "mid-run progress", func(st wire.StatusResponse) bool {
		return st.Done >= 5 && st.Jobs > st.Done
	})
	disp.cmd.Process.Kill()
	disp.cmd.Wait()

	// Restart on the same state directory and address. Workers and the
	// load client ride out the gap and reconnect on their own.
	disp2 := startDaemon(t, "listening on", dispatcherBin, dispArgs...)
	if !strings.Contains(disp2.out.String(), "recovered queue state") {
		t.Fatalf("restarted dispatcher did not recover:\n%s", disp2.out.String())
	}

	done := make(chan error, 1)
	go func() { done <- load.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("load client failed: %v\n%s", err, load.out.String())
		}
	case <-time.After(3 * time.Minute):
		t.Fatalf("load client did not finish\n%s", load.out.String())
	}

	got, err := os.ReadFile(gotTrace)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantTrace) {
		t.Errorf("trace CSV differs from in-process reference after dispatcher SIGKILL (%d vs %d bytes)", len(got), len(wantTrace))
	}
	got, err = os.ReadFile(gotCounts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantCounts) {
		t.Errorf("counts CSV differs from in-process reference after dispatcher SIGKILL (%d vs %d bytes)", len(got), len(wantCounts))
	}
	signalAndWait(t, disp2, syscall.SIGTERM, 30*time.Second)
}

// submitSlow drives one slow unit into a fresh dispatcher and seals.
func submitSlow(t *testing.T, cl *dispatch.Client) {
	t.Helper()
	if _, err := cl.Submit("slow/0", slowSpec()); err != nil {
		t.Fatal(err)
	}
	if err := cl.Seal(); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerSIGKILLRequeue pins the lease machinery end to end: a real
// worker is SIGKILLed mid-batch, the dispatcher's lease expiry
// requeues the unit through the retry policy, a second worker picks it
// up, and the final merged CSV is byte-identical to the in-process
// run.
func TestWorkerSIGKILLRequeue(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash harness")
	}
	bins := t.TempDir()
	dispatcherBin := buildTool(t, bins, "qcloud-dispatcher")
	workerBin := buildTool(t, bins, "qcloud-worker")

	addr := freePort(t)
	startDaemon(t, "listening on", dispatcherBin,
		"-listen", addr, "-state", filepath.Join(t.TempDir(), "state"), "-seed", "9",
		"-lease", "500ms", "-retry-base", "100ms", "-retry-cap", "200ms")
	server := "http://" + addr
	cl := &dispatch.Client{Server: server, Timeout: 2 * time.Second}
	submitSlow(t, cl)

	victim := startDaemon(t, "", workerBin, "-server", server, "-name", "victim", "-workers", "1", "-poll", "10ms", "-q")
	waitStatus(t, cl, 30*time.Second, "victim leased the unit", func(st wire.StatusResponse) bool {
		return st.Leased == 1
	})
	victim.cmd.Process.Kill() // mid-batch: heartbeats stop with it
	victim.cmd.Wait()

	startDaemon(t, "", workerBin, "-server", server, "-name", "rescuer", "-workers", "1", "-poll", "10ms", "-q")
	waitStatus(t, cl, time.Minute, "rescuer finished the unit", func(st wire.StatusResponse) bool {
		return st.Done == 1
	})

	// The lease actually expired and requeued (the rescuer did not just
	// race the victim's report).
	ev, err := cl.Events(0)
	if err != nil {
		t.Fatal(err)
	}
	tally := map[string]int{}
	for _, e := range ev.Events {
		tally[string(e.Kind)]++
	}
	if tally["retry"] < 1 || tally["requeue"] < 1 {
		t.Errorf("no lease-expiry requeue observed: %v", tally)
	}
	if tally["done"] != 1 {
		t.Errorf("done events = %d, want exactly 1", tally["done"])
	}

	got, err := cl.CountsCSV(false)
	if err != nil {
		t.Fatal(err)
	}
	if want := slowGoldenCounts(t); !bytes.Equal(got, want) {
		t.Errorf("counts CSV differs from in-process run after worker SIGKILL (%d vs %d bytes)", len(got), len(want))
	}
}

// TestDispatcherSIGTERMGraceful pins the dispatcher half of the
// graceful-shutdown contract: SIGTERM while a unit is mid-lease drains
// — the in-flight result lands, the journals seal, the process exits
// 0 — and a restart on the same state shows the completed work.
func TestDispatcherSIGTERMGraceful(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess harness")
	}
	bins := t.TempDir()
	dispatcherBin := buildTool(t, bins, "qcloud-dispatcher")
	workerBin := buildTool(t, bins, "qcloud-worker")

	addr := freePort(t)
	state := filepath.Join(t.TempDir(), "state")
	disp := startDaemon(t, "listening on", dispatcherBin,
		"-listen", addr, "-state", state, "-seed", "9", "-drain-timeout", "60s")
	server := "http://" + addr
	cl := &dispatch.Client{Server: server, Timeout: 2 * time.Second}
	submitSlow(t, cl)

	startDaemon(t, "", workerBin, "-server", server, "-name", "w0", "-workers", "1", "-poll", "10ms", "-q")
	waitStatus(t, cl, 30*time.Second, "unit leased", func(st wire.StatusResponse) bool {
		return st.Leased == 1
	})
	// SIGTERM mid-lease: the dispatcher must wait for the in-flight
	// result rather than dropping it.
	signalAndWait(t, disp, syscall.SIGTERM, time.Minute)
	if !strings.Contains(disp.out.String(), "shutdown complete: leases drained, journals sealed") {
		t.Fatalf("no graceful-shutdown line:\n%s", disp.out.String())
	}
	if strings.Contains(disp.out.String(), "drain timeout") {
		t.Fatalf("drain timed out instead of landing the in-flight lease:\n%s", disp.out.String())
	}

	// The drained state — including the result that landed during the
	// drain — survives into a restart.
	disp2 := startDaemon(t, "listening on", dispatcherBin,
		"-listen", addr, "-state", state, "-seed", "9")
	st := waitStatus(t, cl, 30*time.Second, "recovered status", func(st wire.StatusResponse) bool {
		return st.Jobs == 1
	})
	if st.Done != 1 || st.Leased != 0 {
		t.Fatalf("recovered status = %+v, want the drained unit done", st)
	}
	if want := slowGoldenCounts(t); true {
		got, err := cl.CountsCSV(false)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("counts CSV differs after graceful drain (%d vs %d bytes)", len(got), len(want))
		}
	}
	signalAndWait(t, disp2, syscall.SIGTERM, 30*time.Second)
}

// TestWorkerSIGTERMGraceful pins the worker half: SIGTERM mid-batch
// finishes the batch, reports it, deregisters, and exits 0 — no lease
// expiry, no requeue.
func TestWorkerSIGTERMGraceful(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess harness")
	}
	bins := t.TempDir()
	dispatcherBin := buildTool(t, bins, "qcloud-dispatcher")
	workerBin := buildTool(t, bins, "qcloud-worker")

	addr := freePort(t)
	startDaemon(t, "listening on", dispatcherBin,
		"-listen", addr, "-state", filepath.Join(t.TempDir(), "state"), "-seed", "9")
	server := "http://" + addr
	cl := &dispatch.Client{Server: server, Timeout: 2 * time.Second}
	submitSlow(t, cl)

	w := startDaemon(t, "registered", workerBin, "-server", server, "-name", "w0", "-workers", "1", "-poll", "10ms")
	waitStatus(t, cl, 30*time.Second, "unit leased", func(st wire.StatusResponse) bool {
		return st.Leased == 1
	})
	signalAndWait(t, w, syscall.SIGTERM, time.Minute)
	if !strings.Contains(w.out.String(), "1 units completed") {
		t.Fatalf("worker did not report its batch before exiting:\n%s", w.out.String())
	}

	st, err := cl.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 1 || st.Leased != 0 {
		t.Fatalf("status after graceful worker exit = %+v", st)
	}
	if len(st.Workers) != 0 {
		t.Fatalf("worker did not deregister: %v", st.Workers)
	}

	// No lease ever expired: the event stream has exactly one
	// start/done pair and no retry.
	ev, err := cl.Events(0)
	if err != nil {
		t.Fatal(err)
	}
	tally := map[string]int{}
	for _, e := range ev.Events {
		tally[string(e.Kind)]++
	}
	if tally["retry"] != 0 || tally["start"] != 1 || tally["done"] != 1 {
		t.Errorf("event tally = %v, want one clean start/done", tally)
	}
}
