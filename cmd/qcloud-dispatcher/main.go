// Command qcloud-dispatcher is the queue-owning daemon of the service
// decomposition: it accepts submissions over HTTP, leases trajectory
// batches to pulling qcloud-worker daemons, merges their results, and
// serves the deterministic trace/counts CSVs once the stream is
// sealed and drained.
//
// Durability: every accepted mutation is WAL-backed under -state; a
// SIGKILL'd dispatcher restarted on the same directory recovers by
// replay and the merged outputs are byte-identical to an uninterrupted
// run. SIGTERM drains gracefully: submissions are rejected, no new
// leases are granted, in-flight leases get -drain-timeout to land, and
// the journal streams are sealed before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/cloud"
	"qcloud/internal/dispatch"
)

func main() {
	var (
		listen       = flag.String("listen", "127.0.0.1:8042", "listen address (host:port; port 0 picks a free port)")
		state        = flag.String("state", "", "queue state directory (required; WALs + checkpoint)")
		seed         = flag.Int64("seed", 1, "deterministic seed (must match the workload's)")
		days         = flag.Float64("days", 0, "trace-plane window length in days (0 = full study window)")
		simWorkers   = flag.Int("sim-workers", 0, "embedded session's per-machine fan-out (0 = all cores)")
		lease        = flag.Duration("lease", 30*time.Second, "worker lease duration")
		retryMax     = flag.Int("retry-attempts", 5, "max lease attempts per unit before terminal failure")
		retryBase    = flag.Duration("retry-base", 500*time.Millisecond, "base backoff before a requeued lease")
		retryCap     = flag.Duration("retry-cap", 15*time.Second, "backoff cap")
		ckptEvery    = flag.Int("ckpt-every", 64, "completion-log records between checkpoints")
		syncEvery    = flag.Int("sync-every", 0, "fsync the WALs every N records (0 = flush only)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight leases on SIGTERM")
		quiet        = flag.Bool("q", false, "suppress progress logging")
	)
	flag.Parse()
	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	if *state == "" {
		fmt.Fprintln(os.Stderr, "qcloud-dispatcher: -state is required")
		os.Exit(2)
	}

	cfg := dispatch.Config{
		Dir:  *state,
		Seed: *seed,
		Retry: &cloud.RetryPolicy{
			MaxAttempts: *retryMax,
			BaseBackoff: *retryBase,
			MaxBackoff:  *retryCap,
		},
		Lease:           *lease,
		CheckpointEvery: *ckptEvery,
		SyncEvery:       *syncEvery,
		SimWorkers:      *simWorkers,
	}
	if *days > 0 {
		cfg.Start = backend.StudyStart
		cfg.End = backend.StudyStart.Add(time.Duration(*days * 24 * float64(time.Hour)))
	}
	d, err := dispatch.New(cfg)
	if err != nil {
		log.Fatalf("qcloud-dispatcher: %v", err)
	}
	if d.Recovered() {
		st := d.Stats()
		logf("recovered queue state: %d jobs (%d done, %d failed, %d cancelled), sealed=%v",
			st.Jobs, st.Done, st.Failed, st.Cancelled, st.Sealed)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("qcloud-dispatcher: %v", err)
	}
	// The harness greps this line for the bound address; keep the
	// format stable.
	fmt.Printf("listening on %s\n", ln.Addr())
	srv := &http.Server{Handler: d.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		log.Fatalf("qcloud-dispatcher: serve: %v", err)
	case sig := <-sigc:
		logf("received %v, draining", sig)
	}

	// Graceful shutdown: stop granting leases, let in-flight workers
	// land their batches, then seal the journals.
	d.BeginDrain()
	deadline := time.Now().Add(*drainTimeout)
	for !d.Drained() && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if !d.Drained() {
		logf("drain timeout: abandoning in-flight leases (they will requeue on restart)")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	if err := d.Close(); err != nil {
		log.Fatalf("qcloud-dispatcher: sealing journals: %v", err)
	}
	fmt.Println("shutdown complete: leases drained, journals sealed")
}
