// qcloud-vet runs the repo's determinism and hot-path static-analysis
// suite (internal/lint) over the named packages and exits non-zero on
// any diagnostic. It is the mechanical enforcement of the invariants
// every PR's bit-identity pins rely on: no map-order-dependent output,
// no wall-clock reads in sim paths, no ambient RNG, no allocations in
// //qcloud:noalloc kernels, no event emission outside the owned
// machineSim loops.
//
// Usage:
//
//	qcloud-vet [-list] [packages]
//
// Packages default to ./... (resolved against the enclosing module
// root, so the tool behaves identically from any directory inside the
// repo). CI runs it as a required gate next to go vet.
package main

import (
	"flag"
	"fmt"
	"os"

	"qcloud/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and their package scopes, then exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: qcloud-vet [-list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the qcloud determinism/hot-path analyzers (default packages: ./...).\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			scope := "all packages"
			if len(a.Scope) > 0 {
				scope = fmt.Sprint(a.Scope)
			}
			fmt.Printf("%-12s %s\n%14s scope: %s\n", a.Name, a.Doc, "", scope)
		}
		return
	}

	loader, err := lint.NewLoader("")
	if err != nil {
		fmt.Fprintln(os.Stderr, "qcloud-vet:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qcloud-vet:", err)
		os.Exit(2)
	}
	diags, err := lint.Vet(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qcloud-vet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "qcloud-vet: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
