// Command qcloud-load is the psq-style load-generator client: it
// generates the study workload, drives it into a qcloud-dispatcher as
// idempotent submissions (retrying through dispatcher restarts), seals
// the stream, optionally waits for the fleet of workers to drain it,
// tallies the terminal event stream, and fetches the merged result
// CSVs.
//
// With -local it runs the same workload in-process instead — the
// single-process reference whose outputs a dispatcher + N workers run
// must reproduce byte for byte (CI's e2e-daemons job cmp's the two).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"qcloud/internal/backend"
	"qcloud/internal/cloud"
	"qcloud/internal/dispatch"
	"qcloud/internal/dispatch/wire"
	"qcloud/internal/qsim"
	"qcloud/internal/trace"
	"qcloud/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qcloud-load: ")
	var (
		server    = flag.String("server", "http://127.0.0.1:8042", "dispatcher base URL")
		seed      = flag.Int64("seed", 1, "workload seed (must match the dispatcher's)")
		jobs      = flag.Int("jobs", 6200, "expected study job count")
		days      = flag.Float64("days", 0, "submission window in days (0 = full study window)")
		clientID  = flag.String("client", "load", "idempotency-key namespace (keys are <client>/<index>)")
		execW     = flag.Int("exec-width", 0, "exec-plan width cap (0 = default)")
		execB     = flag.Int("exec-batch", 0, "exec-plan batch cap (0 = default)")
		execS     = flag.Int("exec-shots", 0, "exec-plan shot cap (0 = default)")
		wait      = flag.Bool("wait", false, "after sealing, poll until every submission is terminal")
		retryFor  = flag.Duration("retry-for", 60*time.Second, "how long to retry an unreachable dispatcher per call")
		poll      = flag.Duration("poll", 100*time.Millisecond, "status poll interval for -wait")
		events    = flag.Bool("events", false, "tally the dispatcher's terminal event stream after the run")
		traceCSV  = flag.String("trace-csv", "", "write the merged trace-plane CSV here (implies -wait is satisfied first)")
		countsCSV = flag.String("counts-csv", "", "write the merged counts-plane CSV here")
		local     = flag.Bool("local", false, "run in-process instead of against a dispatcher (reference mode)")
		simW      = flag.Int("workers", 0, "parallelism for -local (0 = all cores; output identical at any value)")
		quiet     = flag.Bool("q", false, "suppress progress logging")
	)
	flag.Parse()
	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	start, end := backend.StudyStart, backend.StudyEnd
	if *days > 0 {
		end = start.Add(time.Duration(*days * 24 * float64(time.Hour)))
	}
	specs := workload.Generate(workload.Config{Seed: *seed, TotalJobs: *jobs, Start: start, End: end})
	caps := wire.ExecCaps{MaxWidth: *execW, MaxBatch: *execB, MaxShots: *execS}
	plans := make([]wire.Spec, len(specs))
	for i, js := range specs {
		plans[i] = wire.Plan(js, caps, *seed, i)
	}
	logf("workload: %d jobs over %s", len(plans), end.Sub(start))

	if *local {
		runLocal(plans, *seed, start, end, *simW, *traceCSV, *countsCSV, logf)
		return
	}

	cl := &dispatch.Client{Server: *server}
	t0 := time.Now()
	dups := 0
	for i, p := range plans {
		key := fmt.Sprintf("%s/%d", *clientID, i)
		resp, err := submitRetried(cl, key, p, *retryFor)
		if err != nil {
			log.Fatalf("submit %d: %v", i, err)
		}
		if resp.Dup {
			dups++
		}
		if (i+1)%5000 == 0 {
			logf("submitted %d/%d", i+1, len(plans))
		}
	}
	if err := retried(*retryFor, func() error { return cl.Seal() }); err != nil {
		log.Fatalf("seal: %v", err)
	}
	logf("submitted %d (%d duplicates) and sealed in %s", len(plans), dups, time.Since(t0).Round(time.Millisecond))

	needWait := *wait || *countsCSV != ""
	if needWait {
		for {
			st, err := cl.Status()
			if err != nil {
				logf("status: %v (retrying)", err)
				time.Sleep(*poll)
				continue
			}
			if st.Terminal() >= st.Jobs && st.Sealed {
				logf("drained: %d done, %d failed, %d cancelled (%d workers registered)",
					st.Done, st.Failed, st.Cancelled, len(st.Workers))
				break
			}
			time.Sleep(*poll)
		}
	}
	if *events {
		tallyEvents(cl, logf)
	}
	if *traceCSV != "" {
		var data []byte
		err := retried(*retryFor, func() error {
			var err error
			data, err = cl.TraceCSV()
			return err
		})
		if err != nil {
			log.Fatalf("trace: %v", err)
		}
		if err := os.WriteFile(*traceCSV, data, 0o644); err != nil {
			log.Fatal(err)
		}
		logf("wrote %s (%d bytes)", *traceCSV, len(data))
	}
	if *countsCSV != "" {
		var data []byte
		err := retried(*retryFor, func() error {
			var err error
			data, err = cl.CountsCSV(false)
			return err
		})
		if err != nil {
			log.Fatalf("counts: %v", err)
		}
		if err := os.WriteFile(*countsCSV, data, 0o644); err != nil {
			log.Fatal(err)
		}
		logf("wrote %s (%d bytes)", *countsCSV, len(data))
	}
}

// submitRetried rides out transient dispatcher unavailability (a
// restart mid-load): the idempotency key makes blind resubmission
// safe.
func submitRetried(cl *dispatch.Client, key string, p wire.Spec, window time.Duration) (wire.SubmitResponse, error) {
	var resp wire.SubmitResponse
	err := retried(window, func() error {
		var err error
		resp, err = cl.Submit(key, p)
		return err
	})
	return resp, err
}

// retried retries fn with a short sleep until it succeeds or the
// window closes.
func retried(window time.Duration, fn func() error) error {
	deadline := time.Now().Add(window)
	for {
		err := fn()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// tallyEvents drains the observable stream and prints per-kind totals
// (the distributed analogue of qcloud-sim -events).
func tallyEvents(cl *dispatch.Client, logf func(string, ...any)) {
	tally := map[string]int{}
	var cursor int64
	truncated := false
	for {
		resp, err := cl.Events(cursor)
		if err != nil {
			logf("events: %v", err)
			return
		}
		truncated = truncated || resp.Truncated
		for _, ev := range resp.Events {
			tally[string(ev.Kind)]++
		}
		if resp.Next == cursor {
			break
		}
		cursor = resp.Next
	}
	kinds := make([]string, 0, len(tally))
	for k := range tally {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	note := ""
	if truncated {
		note = " (stream truncated; totals are a lower bound)"
	}
	fmt.Printf("events%s:\n", note)
	for _, k := range kinds {
		fmt.Printf("  %-16s %d\n", k, tally[k])
	}
}

// runLocal is reference mode: the same workload executed in-process.
// The trace plane goes through cloud.Simulate (identical to what the
// dispatcher's embedded session replays); the counts plane through
// wire.RunLocal (identical to what the worker fleet computes).
func runLocal(plans []wire.Spec, seed int64, start, end time.Time, workers int, tracePath, countsPath string, logf func(string, ...any)) {
	if tracePath != "" {
		specs := make([]*cloud.JobSpec, len(plans))
		for i := range plans {
			specs[i] = plans[i].JobSpec()
		}
		tr, err := cloud.Simulate(cloud.Config{Seed: seed, Start: start, End: end, Workers: workers}, specs)
		if err != nil {
			log.Fatalf("local trace: %v", err)
		}
		f, err := os.Create(tracePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteCSV(f, tr.Jobs); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		logf("wrote %s (in-process reference)", tracePath)
	}
	if countsPath != "" {
		rs, err := wire.RunLocal(plans, qsim.Parallelism{Workers: workers})
		if err != nil {
			log.Fatalf("local counts: %v", err)
		}
		f, err := os.Create(countsPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := rs.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		logf("wrote %s (in-process reference)", countsPath)
	}
}
