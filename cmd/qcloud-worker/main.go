// Command qcloud-worker is the pulling execution daemon: it registers
// with a qcloud-dispatcher, leases trajectory batches (qsim.BatchRun
// is the unit of work), heartbeats while executing, and streams merged
// counts back.
//
// SIGTERM is graceful: the worker finishes the batch it is executing,
// reports it, deregisters, and exits 0. SIGKILL is safe: the
// dispatcher's lease expiry requeues anything the worker held.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qcloud/internal/dispatch"
)

func main() {
	var (
		server     = flag.String("server", "http://127.0.0.1:8042", "dispatcher base URL")
		name       = flag.String("name", "", "worker name (default worker-<pid>)")
		maxUnits   = flag.Int("units", 4, "max units leased per pull (one BatchRun spans the pull)")
		simWorkers = flag.Int("workers", 0, "BatchRun parallelism (0 = all cores)")
		poll       = flag.Duration("poll", 200*time.Millisecond, "idle wait between empty pulls")
		quiet      = flag.Bool("q", false, "suppress progress logging")
	)
	flag.Parse()
	if *name == "" {
		*name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	w, err := dispatch.NewWorker(dispatch.WorkerConfig{
		Server:     *server,
		Name:       *name,
		MaxUnits:   *maxUnits,
		SimWorkers: *simWorkers,
		Poll:       *poll,
		Logf: func(format string, args ...any) {
			logf("[%s] "+format, append([]any{*name}, args...)...)
		},
	})
	if err != nil {
		log.Fatalf("qcloud-worker: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := w.Run(ctx); err != nil {
		log.Fatalf("qcloud-worker: %v", err)
	}
	fmt.Printf("worker %s exiting: %d units completed\n", *name, w.Units())
}
